"""Palette-aware matmul kernels for eval-mode clustered layers.

A palettized linear weight ``W`` of shape ``(out, in)`` takes at most
``k = 2**bits`` distinct values -- the palette.  The dense eval path
materializes ``lut[idx]`` and runs an ordinary gemm, paying
``B * out * in`` multiplies.  The palette kernel restructures the matmul
around the palette instead::

    y[b, o] = sum_i x[b, i] * lut[idx[o, i]]
            = sum_k lut[k] * ( sum_{i : idx[o, i] == k} x[b, i] )

The inner parenthesis is a *segment sum* of activations -- additions
only -- and the outer mixture is a ``(B, out, k) @ (k,)`` contraction:
the multiply count scales with ``k``, not with the dense inner dimension.
:class:`PaletteLayout` precomputes the segment structure once per weight
version (a permutation of weight positions sorted by ``(row, palette
entry)`` plus segment bounds), so the per-call work is one activation
gather, one cumulative sum, and the ``k``-column mixture.

In front of the kernel sits a **hot dequantized-tile LRU**
(:class:`TileCache`): output-row tiles that keep getting hit are
materialized back to dense and served by gemm (trading bytes for BLAS
throughput), under a byte budget governed exactly like
``CompressorConfig.worker_cache_bytes_limit`` -- least recently used
tiles are evicted back to the palette path.  ``tile_cache_bytes_limit=0``
means unlimited; a cache of ``None`` disables dequantization entirely
(pure palette execution).

Everything in this module is plain numpy on host memory -- no tensor
autograd, no device tracking -- because it models the *deployment*
artifact execution, not training.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.serving.faults import CorruptTileError


def _index_dtype(bound: int) -> np.dtype:
    """Smallest unsigned dtype addressing ``bound`` distinct values."""
    if bound <= 1 << 8:
        return np.dtype(np.uint8)
    if bound <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


@dataclass(frozen=True)
class PaletteLayout:
    """Precomputed segment structure of one palettized ``(out, in)`` weight.

    ``cols`` lists the *input-column* index of every weight position,
    sorted by ``(output row, palette entry)``; ``bounds`` delimits the
    ``out * k`` segments in that order.  Rows are contiguous prefixes of
    the sort order, so any tile of output rows is a contiguous slice --
    the property the tiled kernel and the dequantizer rely on.
    """

    lut: np.ndarray  # (k,) float32, already projected to the serving dtype
    cols: np.ndarray  # (out * in,) smallest-fitting uint dtype
    bounds: np.ndarray  # (out * k + 1,) int64, segment starts
    out_features: int
    in_features: int

    @property
    def k(self) -> int:
        """Palette entries (``2**bits``)."""
        return int(self.lut.size)

    @property
    def nbytes(self) -> int:
        """Host bytes of the in-memory execution layout (lut + cols + bounds)."""
        return int(self.lut.nbytes + self.cols.nbytes + self.bounds.nbytes)

    @property
    def packed_nbytes(self) -> int:
        """Bytes of the minimal shippable artifact: 16-bit lut + bit-packed indices.

        The execution layout (:attr:`nbytes`) trades memory for kernel
        speed; this is what actually ships -- the eDKM deployment size
        of ``bits/16`` of a float16 weight, plus the ``k``-entry lut.
        """
        bits = max(1, (self.k - 1).bit_length())
        positions = self.out_features * self.in_features
        return int(2 * self.k + (positions * bits + 7) // 8)

    @classmethod
    def build(cls, lut: np.ndarray, indices: np.ndarray) -> "PaletteLayout":
        """Precompute the layout for palette ``lut`` and index matrix ``indices``.

        ``indices`` is the ``(out, in)`` nearest-centroid assignment; the
        sort is a stable counting argsort over ``row * k + idx``, so the
        layout is deterministic for identical inputs.
        """
        lut = np.asarray(lut, dtype=np.float32).reshape(-1)
        indices = np.asarray(indices)
        if indices.ndim != 2:
            raise ValueError(f"indices must be 2-D (out, in), got {indices.shape}")
        out_features, in_features = indices.shape
        k = int(lut.size)
        if indices.size and int(indices.max()) >= k:
            raise ValueError(
                f"index {int(indices.max())} out of range for a {k}-entry palette"
            )
        keys = indices.astype(np.int64, copy=False) + (
            np.arange(out_features, dtype=np.int64)[:, None] * k
        )
        flat_keys = keys.reshape(-1)
        perm = np.argsort(flat_keys, kind="stable")
        cols_all = np.tile(
            np.arange(in_features, dtype=np.int64), out_features
        )
        cols = cols_all[perm].astype(_index_dtype(in_features))
        counts = np.bincount(flat_keys, minlength=out_features * k)
        bounds = np.zeros(out_features * k + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        return cls(
            lut=lut,
            cols=cols,
            bounds=bounds,
            out_features=out_features,
            in_features=in_features,
        )

    def dequantize_rows(self, row_start: int, row_end: int) -> np.ndarray:
        """Materialize output rows ``[row_start, row_end)`` as dense float32.

        The tile the LRU caches: reconstructed by scattering each
        segment's palette value back to its input columns.
        """
        rows = row_end - row_start
        k = self.k
        seg_lo, seg_hi = row_start * k, row_end * k
        seg_len = np.diff(self.bounds[seg_lo : seg_hi + 1])
        values = np.repeat(np.tile(self.lut, rows), seg_len)
        pos_lo, pos_hi = self.bounds[seg_lo], self.bounds[seg_hi]
        cols = self.cols[pos_lo:pos_hi].astype(np.int64, copy=False)
        row_of_pos = np.repeat(
            np.arange(rows, dtype=np.int64), self.in_features
        )
        tile = np.empty((rows, self.in_features), dtype=np.float32)
        tile[row_of_pos, cols] = values
        return tile


def palette_matmul(
    x: np.ndarray,
    layout: PaletteLayout,
    row_start: int = 0,
    row_end: int | None = None,
) -> np.ndarray:
    """``x @ W[row_start:row_end].T`` computed against the palette.

    ``x`` is ``(B, in)``; the result is ``(B, rows)`` float32.  Per call:
    one ``O(B * rows * in)`` activation gather + cumulative sum (additions,
    accumulated in float64 so segment differences stay accurate) and an
    ``O(B * rows * k)`` mixture against the palette -- the only multiply
    stage, scaling with ``k`` instead of the dense inner dimension.
    """
    if row_end is None:
        row_end = layout.out_features
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2 or x.shape[1] != layout.in_features:
        raise ValueError(
            f"x must be (B, {layout.in_features}), got {x.shape}"
        )
    rows = row_end - row_start
    k = layout.k
    seg_lo, seg_hi = row_start * k, row_end * k
    pos_lo, pos_hi = layout.bounds[seg_lo], layout.bounds[seg_hi]
    cols = layout.cols[pos_lo:pos_hi].astype(np.int64, copy=False)
    gathered = x[:, cols]
    csum = np.zeros((x.shape[0], gathered.shape[1] + 1), dtype=np.float64)
    np.cumsum(gathered, axis=1, dtype=np.float64, out=csum[:, 1:])
    seg_bounds = (layout.bounds[seg_lo : seg_hi + 1] - pos_lo).astype(np.int64)
    seg_sums = csum[:, seg_bounds[1:]] - csum[:, seg_bounds[:-1]]  # (B, rows*k)
    mixed = seg_sums.reshape(x.shape[0], rows, k) @ layout.lut.astype(np.float64)
    return mixed.astype(np.float32)


@dataclass
class TileCacheStats:
    """Hit/miss/eviction counters of one :class:`TileCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    corruptions: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form for stats reports and benchmark artifacts."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "corruptions": self.corruptions,
        }


class TileCache:
    """LRU of hot dequantized weight tiles under a byte budget.

    Shared across every served layer (keys carry the layer name), so the
    budget is global like ``worker_cache_bytes_limit``.  Thread-safe: the
    scheduler thread and any caller probing stats may race.

    With ``digest_checks`` on (the default), every tile is stamped with a
    blake2b digest at :meth:`put` and verified at :meth:`get`: a resident
    tile whose bytes no longer match -- bit-rot, a stray write through an
    aliased view, or the fault injector's :meth:`corrupt_one` -- is
    dropped and surfaced as a typed
    :class:`~repro.serving.faults.CorruptTileError` instead of silently
    serving wrong logits.  The supervised scheduler answers it by
    charging the layer's circuit breaker and retrying the step, which
    re-dequantizes cleanly.
    """

    def __init__(self, bytes_limit: int = 0, digest_checks: bool = True) -> None:
        if bytes_limit < 0:
            raise ValueError(f"bytes_limit must be >= 0, got {bytes_limit}")
        self.bytes_limit = bytes_limit
        self.digest_checks = digest_checks
        self._lock = threading.Lock()
        self._tiles: OrderedDict[tuple, tuple[np.ndarray, bytes | None]] = (
            OrderedDict()
        )
        self._resident_bytes = 0
        self.stats = TileCacheStats()

    @staticmethod
    def _digest(tile: np.ndarray) -> bytes:
        return hashlib.blake2b(tile.tobytes(), digest_size=8).digest()

    def get(self, key: tuple) -> np.ndarray | None:
        """The tile under ``key`` (refreshing recency), or ``None``.

        Raises :class:`~repro.serving.faults.CorruptTileError` (after
        dropping the entry) when digest checks are on and the tile's
        bytes no longer match the digest stamped at :meth:`put`.
        """
        with self._lock:
            entry = self._tiles.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            tile, digest = entry
            if digest is not None and self._digest(tile) != digest:
                self._tiles.pop(key)
                self._resident_bytes -= int(tile.nbytes)
                self.stats.corruptions += 1
                raise CorruptTileError(str(key[0]))
            self._tiles.move_to_end(key)
            self.stats.hits += 1
            return tile

    def put(self, key: tuple, tile: np.ndarray) -> None:
        """Insert ``tile``, evicting LRU entries beyond the byte budget.

        A tile larger than the whole budget is not admitted at all --
        the caller keeps serving it through the palette kernel.
        """
        nbytes = int(tile.nbytes)
        if self.bytes_limit and nbytes > self.bytes_limit:
            return
        digest = self._digest(tile) if self.digest_checks else None
        with self._lock:
            old = self._tiles.pop(key, None)
            if old is not None:
                self._resident_bytes -= int(old[0].nbytes)
            self._tiles[key] = (tile, digest)
            self._resident_bytes += nbytes
            self.stats.puts += 1
            if self.bytes_limit:
                # The just-inserted tile fits the budget (admission above),
                # so evicting strictly-older entries always terminates.
                while self._resident_bytes > self.bytes_limit and len(self._tiles) > 1:
                    _, (evicted, _) = self._tiles.popitem(last=False)
                    self._resident_bytes -= int(evicted.nbytes)
                    self.stats.evictions += 1

    def corrupt_one(self, prefix: tuple) -> bool:
        """Flip one byte of the oldest resident tile under ``prefix``.

        The fault injector's poisoning primitive: the stamped digest is
        deliberately *not* refreshed, so the next :meth:`get` of that key
        detects the corruption.  Returns whether a tile was poisoned
        (``False`` when nothing under ``prefix`` is resident -- the spec
        stays armed).  A no-op cache with digest checks off still
        corrupts, modeling undetected rot; callers wanting detection must
        keep checks on.
        """
        with self._lock:
            for key, (tile, _) in self._tiles.items():
                if key[: len(prefix)] == prefix:
                    flat = tile.view(np.uint8).reshape(-1)
                    flat[0] ^= 0xFF
                    return True
        return False

    def invalidate_prefix(self, prefix: tuple) -> None:
        """Drop every tile whose key starts with ``prefix`` (stale version)."""
        with self._lock:
            stale = [k for k in self._tiles if k[: len(prefix)] == prefix]
            for key in stale:
                self._resident_bytes -= int(self._tiles.pop(key)[0].nbytes)

    def resident_bytes(self) -> int:
        """Bytes currently held by resident tiles."""
        with self._lock:
            return self._resident_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._tiles)


@dataclass
class PaletteExecStats:
    """Per-layer execution counters: which path served how many rows."""

    palette_row_blocks: int = 0
    dense_row_blocks: int = 0
    calls: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form for stats reports and benchmark artifacts."""
        return {
            "palette_row_blocks": self.palette_row_blocks,
            "dense_row_blocks": self.dense_row_blocks,
            "calls": self.calls,
        }


class PaletteLinearExec:
    """One eval-mode layer's palette executor: tiled kernel + LRU front.

    Built from the layer's converged palette (``lut`` already projected to
    the serving weight dtype, so palette arithmetic consumes exactly the
    values the dense reconstruction path would) and keyed by the caller on
    the weight storage version -- a weight write invalidates the executor
    wholesale, never silently serves stale tiles.
    """

    def __init__(
        self,
        name: str,
        lut: np.ndarray,
        indices: np.ndarray,
        tile_rows: int = 32,
        cache: TileCache | None = None,
        version_token: object = None,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.name = name
        self.layout = PaletteLayout.build(lut, indices)
        self.tile_rows = max(1, int(tile_rows))
        self.cache = cache
        self.version_token = version_token
        self.fault_hook = fault_hook
        self.stats = PaletteExecStats()

    @property
    def nbytes(self) -> int:
        """Execution-layout bytes resident for this layer (tiles are cache)."""
        return self.layout.nbytes

    @property
    def packed_nbytes(self) -> int:
        """Minimal shippable artifact bytes (see :attr:`PaletteLayout.packed_nbytes`)."""
        return self.layout.packed_nbytes

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``x @ W.T`` over all output rows, tile by tile.

        Resident tiles run dense gemm; misses run the palette kernel and
        (when a cache is attached) dequantize the tile for next time.
        The optional ``fault_hook`` (the serving fault injector's
        ``maybe_kernel_error``) runs first with this layer's name so an
        injected :class:`~repro.serving.faults.PaletteKernelError`
        genuinely originates inside the kernel call.
        """
        if self.fault_hook is not None:
            self.fault_hook(self.name)
        x = np.asarray(x, dtype=np.float32)
        out = np.empty((x.shape[0], self.layout.out_features), dtype=np.float32)
        self.stats.calls += 1
        for tile_idx, row_start in enumerate(
            range(0, self.layout.out_features, self.tile_rows)
        ):
            row_end = min(row_start + self.tile_rows, self.layout.out_features)
            tile = None
            if self.cache is not None:
                key = (self.name, self.version_token, tile_idx)
                tile = self.cache.get(key)
                if tile is None:
                    tile = self.layout.dequantize_rows(row_start, row_end)
                    self.cache.put(key, tile)
                    self.stats.palette_row_blocks += 1
                    out[:, row_start:row_end] = palette_matmul(
                        x, self.layout, row_start, row_end
                    )
                    continue
            if tile is not None:
                self.stats.dense_row_blocks += 1
                out[:, row_start:row_end] = x @ tile.T
            else:
                self.stats.palette_row_blocks += 1
                out[:, row_start:row_end] = palette_matmul(
                    x, self.layout, row_start, row_end
                )
        return out

    def invalidate(self) -> None:
        """Drop this layer's cached tiles (weight version moved on)."""
        if self.cache is not None:
            self.cache.invalidate_prefix((self.name, self.version_token))
