"""Per-request accounting and the aggregate :class:`ServerStats` report.

Every request that reaches the server leaves a :class:`RequestRecord`
(latency, queue wait, token counts, outcome).  :class:`ServerStats`
accumulates those records plus scheduler-level counters (decode steps,
batch occupancy, admission/deadline rejections) and renders them into a
:class:`StatsReport` -- the requests/sec + p50/p99 numbers
``BENCH_serving.json`` publishes.  Byte traffic is not tracked here:
the server records per-request transfers into
:mod:`repro.memory.traffic` under ``serve:``-prefixed tags, and the
report pulls totals back out of the ledger.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

from repro.memory.traffic import TrafficLedger
from repro.serving.queue import ServerRequest

SERVE_TAG_PREFIX = "serve:"
"""Prefix of :mod:`repro.memory.traffic` tags written by the server.

Per-request records use ``serve:req<id>`` so a single request's bytes can
be pulled out of the global ledger after the fact.
"""


def request_tag(request_id: int) -> str:
    """The traffic-ledger tag for one request's transfers."""
    return f"{SERVE_TAG_PREFIX}req{request_id}"


DEGRADE_TAG = f"{SERVE_TAG_PREFIX}degrade"
"""Ledger tag for circuit-breaker events (palette→dense trips and
re-promotions).  Records under this tag are an audit trail, not data
movement, so :meth:`ServerStats.report` excludes them from both the
weight and activation byte tallies and surfaces them separately as
``degrade_bytes``."""


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of empty list")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without float
    return sorted_values[int(rank) - 1]


@dataclass(frozen=True)
class RequestRecord:
    """Outcome of one request, as the stats layer remembers it."""

    request_id: int
    prompt_tokens: int
    new_tokens: int
    queue_wait_s: float | None
    latency_s: float | None
    ok: bool
    error: str | None = None

    @classmethod
    def from_request(cls, request: ServerRequest, prompt_tokens: int) -> "RequestRecord":
        """Snapshot a resolved :class:`ServerRequest`."""
        error = request.error
        return cls(
            request_id=request.id,
            prompt_tokens=prompt_tokens,
            new_tokens=request.tokens_generated,
            queue_wait_s=request.queue_wait_s,
            latency_s=request.latency_s,
            ok=request.ok,
            error=None if error is None else type(error).__name__,
        )


@dataclass(frozen=True)
class StatsReport:
    """Aggregate serving metrics over one measurement window.

    Latency percentiles are over *completed* requests only; rejected and
    aborted requests are counted separately so an overloaded server
    cannot flatter its tail by shedding load.
    """

    wall_s: float
    submitted: int
    completed: int
    rejected_admission: int
    rejected_deadline: int
    aborted_deadline: int
    failed_other: int
    requests_per_s: float
    tokens_generated: int
    tokens_per_s: float
    latency_p50_s: float | None
    latency_p99_s: float | None
    latency_mean_s: float | None
    queue_wait_mean_s: float | None
    decode_steps: int
    mean_batch_occupancy: float
    weight_bytes_read: int
    activation_bytes: int
    step_failures: int = 0
    step_retries: int = 0
    watchdog_kills: int = 0
    loop_respawns: int = 0
    breaker_trips: int = 0
    breaker_repromotions: int = 0
    degrade_bytes: int = 0

    def to_json_dict(self) -> dict:
        """A JSON-serializable dict (the BENCH_serving row shape)."""
        return asdict(self)


class ServerStats:
    """Thread-safe accumulator behind :meth:`PaletteServer.stats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[RequestRecord] = []
        self.submitted = 0
        self.rejected_admission = 0
        self.rejected_deadline = 0
        self.aborted_deadline = 0
        self.decode_steps = 0
        self.decoded_rows = 0
        self.step_failures = 0
        self.step_retries = 0
        self.watchdog_kills = 0
        self.loop_respawns = 0
        self.breaker_trips = 0
        self.breaker_repromotions = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None

    def note_submitted(self) -> None:
        """Count a request that passed admission."""
        with self._lock:
            self.submitted += 1

    def note_rejected_admission(self) -> None:
        """Count a submit bounced by the queue-depth bound."""
        with self._lock:
            self.rejected_admission += 1

    def note_rejected_deadline(self, n: int = 1) -> None:
        """Count requests that expired while still queued."""
        with self._lock:
            self.rejected_deadline += n

    def note_aborted_deadline(self, n: int = 1) -> None:
        """Count requests aborted mid-decode by their deadline."""
        with self._lock:
            self.aborted_deadline += n

    def note_step(self, batch_rows: int) -> None:
        """Count one continuous-batching decode step over ``batch_rows``."""
        with self._lock:
            self.decode_steps += 1
            self.decoded_rows += batch_rows

    def note_step_failure(self) -> None:
        """Count a decode step that failed its whole batch (crash boundary)."""
        with self._lock:
            self.step_failures += 1

    def note_step_retry(self, n: int = 1) -> None:
        """Count transient-step retries taken before a step succeeded."""
        with self._lock:
            self.step_retries += n

    def note_watchdog_kill(self) -> None:
        """Count a scheduler loop killed by the step watchdog (hang)."""
        with self._lock:
            self.watchdog_kills += 1

    def note_loop_respawn(self) -> None:
        """Count a fresh scheduler loop spawned after a kill."""
        with self._lock:
            self.loop_respawns += 1

    def note_breaker_trip(self) -> None:
        """Count a per-layer circuit breaker tripping palette to dense."""
        with self._lock:
            self.breaker_trips += 1

    def note_breaker_repromotion(self) -> None:
        """Count a tripped layer re-promoted to the palette path."""
        with self._lock:
            self.breaker_repromotions += 1

    def note_finished(self, record: RequestRecord) -> None:
        """Record a resolved request (completed or failed)."""
        with self._lock:
            self._records.append(record)

    def records(self) -> list[RequestRecord]:
        """Snapshot of all finished-request records so far."""
        with self._lock:
            return list(self._records)

    def report(
        self,
        wall_s: float,
        ledger: TrafficLedger | None = None,
        tag_prefix: str = SERVE_TAG_PREFIX,
    ) -> StatsReport:
        """Render accumulated counters into a :class:`StatsReport`.

        ``wall_s`` is the measurement window (the caller owns the clock);
        ``ledger`` supplies byte totals from ``tag_prefix``-tagged
        transfers -- weight reads are ``dst="flops"`` records, activation
        traffic everything else.  :data:`DEGRADE_TAG` records are an
        audit trail of breaker events, not data movement: they are
        excluded from both tallies and summed into ``degrade_bytes``.
        """
        with self._lock:
            records = list(self._records)
            submitted = self.submitted
            rejected_admission = self.rejected_admission
            rejected_deadline = self.rejected_deadline
            aborted_deadline = self.aborted_deadline
            decode_steps = self.decode_steps
            decoded_rows = self.decoded_rows
            step_failures = self.step_failures
            step_retries = self.step_retries
            watchdog_kills = self.watchdog_kills
            loop_respawns = self.loop_respawns
            breaker_trips = self.breaker_trips
            breaker_repromotions = self.breaker_repromotions
        ok_records = [r for r in records if r.ok]
        failed_other = sum(
            1
            for r in records
            if not r.ok and r.error not in ("DeadlineExceeded",)
        )
        latencies = sorted(
            r.latency_s for r in ok_records if r.latency_s is not None
        )
        waits = [r.queue_wait_s for r in ok_records if r.queue_wait_s is not None]
        tokens = sum(r.new_tokens for r in ok_records)
        wall = max(wall_s, 1e-9)
        weight_bytes = 0
        activation_bytes = 0
        degrade_bytes = 0
        if ledger is not None:
            for transfer in ledger.transfers():
                if not transfer.tag.startswith(tag_prefix):
                    continue
                if transfer.tag == DEGRADE_TAG:
                    degrade_bytes += transfer.nbytes
                elif transfer.dst == "flops":
                    weight_bytes += transfer.nbytes
                else:
                    activation_bytes += transfer.nbytes
        return StatsReport(
            wall_s=wall_s,
            submitted=submitted,
            completed=len(ok_records),
            rejected_admission=rejected_admission,
            rejected_deadline=rejected_deadline,
            aborted_deadline=aborted_deadline,
            failed_other=failed_other,
            requests_per_s=len(ok_records) / wall,
            tokens_generated=tokens,
            tokens_per_s=tokens / wall,
            latency_p50_s=percentile(latencies, 50) if latencies else None,
            latency_p99_s=percentile(latencies, 99) if latencies else None,
            latency_mean_s=sum(latencies) / len(latencies) if latencies else None,
            queue_wait_mean_s=sum(waits) / len(waits) if waits else None,
            decode_steps=decode_steps,
            mean_batch_occupancy=decoded_rows / decode_steps if decode_steps else 0.0,
            weight_bytes_read=weight_bytes,
            activation_bytes=activation_bytes,
            step_failures=step_failures,
            step_retries=step_retries,
            watchdog_kills=watchdog_kills,
            loop_respawns=loop_respawns,
            breaker_trips=breaker_trips,
            breaker_repromotions=breaker_repromotions,
            degrade_bytes=degrade_bytes,
        )
