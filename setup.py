"""Legacy build shim: this offline environment lacks the ``wheel`` package,
so editable installs must go through ``setup.py develop``
(``pip install -e . --no-build-isolation --no-use-pep517``).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
