"""Tests for autograd graph mechanics and saved-tensor hooks."""

import gc

import numpy as np
import pytest

import repro.tensor as rt
from repro.tensor import no_grad, saved_tensors_hooks
from repro.tensor.autograd import is_grad_enabled, unbroadcast


class TestGraphMechanics:
    def test_simple_chain(self):
        x = rt.tensor([2.0], requires_grad=True)
        y = (x * 3.0 + 1.0) ** 2
        y.backward()
        # dy/dx = 2 (3x + 1) * 3 = 42 at x=2.
        assert x.grad.numpy()[0] == pytest.approx(42.0)

    def test_grad_accumulates_across_backwards(self):
        x = rt.tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert x.grad.numpy()[0] == pytest.approx(5.0)

    def test_multi_use_fanout(self):
        x = rt.tensor([3.0], requires_grad=True)
        y = x * x + x * 2.0  # dy/dx = 2x + 2 = 8
        y.sum().backward()
        assert x.grad.numpy()[0] == pytest.approx(8.0)

    def test_diamond_graph(self):
        x = rt.tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x + 1.0
        y = (a * b).sum()  # y = 3x(x+1); dy/dx = 6x + 3 = 15
        y.backward()
        assert x.grad.numpy()[0] == pytest.approx(15.0)

    def test_deep_chain_no_recursion_error(self):
        x = rt.tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        assert x.grad.numpy()[0] == pytest.approx(1.0)

    def test_backward_on_leaf_raises(self):
        x = rt.tensor([1.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="no grad_fn"):
            x.backward()

    def test_backward_nonscalar_needs_grad(self):
        x = rt.tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError, match="non-scalar"):
            y.backward()
        y2 = x * 2.0
        y2.backward(np.array([1.0, 0.5], dtype=np.float32))
        assert np.allclose(x.grad.numpy(), [2.0, 1.0])

    def test_backward_grad_shape_mismatch(self):
        x = rt.tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="shape"):
            (x * 2.0).backward(np.ones(3, dtype=np.float32))

    def test_double_backward_through_same_node_raises(self):
        x = rt.tensor([1.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        with pytest.raises(RuntimeError, match="consumed|grad_fn"):
            y.backward()

    def test_no_grad_blocks_recording(self):
        x = rt.tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y.grad_fn is None
        assert not y.requires_grad

    def test_enable_grad_inside_no_grad(self):
        from repro.tensor import enable_grad

        x = rt.tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
                y = x * 2.0
        assert y.grad_fn is not None

    def test_detach_breaks_graph(self):
        x = rt.tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach()
        assert y.grad_fn is None
        assert y.shares_storage_with(x * 0 + y)  is False  # sanity: new ops work

    def test_requires_grad_on_nonleaf_raises(self):
        x = rt.tensor([1.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError, match="non-leaf"):
            y.requires_grad_(True)

    def test_grad_not_tracked_for_non_required(self):
        x = rt.tensor([1.0])
        y = x * 2.0
        assert y.grad_fn is None

    def test_mixed_required_inputs(self):
        x = rt.tensor([1.0], requires_grad=True)
        c = rt.tensor([5.0])
        (x * c).sum().backward()
        assert x.grad is not None
        assert c.grad is None

    def test_zero_grad(self):
        x = rt.tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_grad_dtype_matches_leaf(self):
        x = rt.tensor([1.0], dtype="bfloat16", requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad.dtype is rt.bfloat16


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sum_leading_dims(self):
        assert unbroadcast(np.ones((4, 2, 3)), (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(np.ones((4, 2, 3)), (2, 3)) == 4)

    def test_sum_size1_dims(self):
        out = unbroadcast(np.ones((2, 3)), (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3)

    def test_combined(self):
        out = unbroadcast(np.ones((5, 2, 3)), (1, 3))
        assert out.shape == (1, 3)
        assert np.all(out == 10)


class TestSavedTensorHooks:
    def test_pack_unpack_called(self):
        events = []

        def pack(t):
            events.append(("pack", t.shape))
            return t

        def unpack(handle):
            events.append(("unpack", handle.shape))
            return handle

        x = rt.tensor([1.0, 2.0], requires_grad=True)
        with saved_tensors_hooks(pack, unpack):
            y = (x * x).sum()
        assert ("pack", (2,)) in events
        y.backward()
        assert ("unpack", (2,)) in events

    def test_hooks_only_active_inside_context(self):
        calls = []
        x = rt.tensor([1.0], requires_grad=True)
        with saved_tensors_hooks(lambda t: calls.append(1) or t, lambda h: h):
            pass
        (x * x).sum().backward()
        assert calls == []

    def test_innermost_hooks_win(self):
        order = []

        def make(tag):
            return (
                lambda t: order.append(f"pack-{tag}") or t,
                lambda h: h,
            )

        x = rt.tensor([1.0], requires_grad=True)
        outer_pack, outer_unpack = make("outer")
        inner_pack, inner_unpack = make("inner")
        with saved_tensors_hooks(outer_pack, outer_unpack):
            with saved_tensors_hooks(inner_pack, inner_unpack):
                y = (x * x).sum()
        y.backward()
        assert "pack-inner" in order
        assert "pack-outer" not in order

    def test_handle_can_be_arbitrary_object(self):
        stash = {}

        def pack(t):
            key = len(stash)
            stash[key] = t.numpy()
            return key

        def unpack(key):
            return rt.tensor(stash[key], device="cpu")

        x = rt.tensor([3.0], requires_grad=True)
        with saved_tensors_hooks(pack, unpack):
            y = (x * x).sum()
        y.backward()
        assert x.grad.numpy()[0] == pytest.approx(6.0)

    def test_gradients_identical_with_roundtrip_hooks(self):
        def run(with_hooks):
            rt.manual_seed(0)
            x = rt.randn(4, 4, requires_grad=True)
            if with_hooks:
                with saved_tensors_hooks(lambda t: t.numpy(), lambda a: rt.tensor(a)):
                    y = ((x @ x).softmax(dim=1) ** 2).sum()
            else:
                y = ((x @ x).softmax(dim=1) ** 2).sum()
            y.backward()
            return x.grad.numpy()

        assert np.allclose(run(False), run(True), rtol=1e-6)

    def test_saved_tensors_released_after_backward(self):
        x = rt.randn(16, 16, requires_grad=True)
        y = (x * x).sum()
        node = y.grad_fn
        # Mul's saved payload holds x; sum's node holds edges to mul.
        y.backward()
        gc.collect()
        assert node.ctx._packed == []


class TestConsumerEdges:
    def test_consumers_recorded(self):
        x = rt.tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = x + 1.0
        assert x.consumers is not None
        live = [ref() for ref in x.consumers if ref() is not None]
        names = {node.op_name for node in live}
        assert names == {"Mul", "Add"}
        del y, z

    def test_consumers_are_weak(self):
        x = rt.tensor([1.0], requires_grad=True)
        y = x * 2.0
        del y
        gc.collect()
        assert all(ref() is None for ref in x.consumers)

    def test_no_consumers_without_grad(self):
        x = rt.tensor([1.0])
        _ = x * 2.0
        assert x.consumers is None
