"""Shared-memory tensor codec tests (see ``repro/tensor/serialization.py``).

The codec must round-trip every logical dtype bit-for-bit (including the
simulated bfloat16, whose physical buffer is wider than its accounting),
preserve view metadata (0-d, empty, strided/offset views), resolve dtypes
back to the interned singletons after crossing a pickle boundary, and
never leak a block: the exporter's ``close()`` unlinks, leases only unmap,
and a worker that dies mid-task cannot take the block with it.
"""

import pickle

import numpy as np
import pytest

from repro.tensor.dtype import _ALL, get_dtype
from repro.tensor.serialization import (
    ShmLeaseRegistry,
    ShmTensorHandle,
    attach_tensor_shm,
    export_tensor_shm,
    materialize_shm,
)
from repro.tensor.tensor import Tensor


def _sample_array(dtype_name: str, shape=(5, 3)) -> np.ndarray:
    rng = np.random.default_rng(0)
    if dtype_name == "bool":
        return rng.random(shape) > 0.5
    dtype = get_dtype(dtype_name)
    if dtype.is_floating:
        return (rng.standard_normal(shape) * 3).astype(dtype.np_storage)
    return rng.integers(0, 100, size=shape).astype(dtype.np_storage)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype_name", sorted(_ALL))
    def test_all_dtypes_bit_identical(self, dtype_name):
        tensor = Tensor.from_numpy(_sample_array(dtype_name), dtype=dtype_name)
        with export_tensor_shm(tensor) as export:
            with attach_tensor_shm(export.handle) as attached:
                assert attached.dtype is tensor.dtype  # interned singleton
                assert attached.shape == tensor.shape
                assert attached.strides == tensor.strides
                assert attached.offset == tensor.offset
                assert np.array_equal(attached._np(), tensor._np())
                # Physical buffers match byte-for-byte (bf16's float32
                # backing included).
                assert np.array_equal(
                    attached.storage.data, tensor.storage.data
                )

    def test_bfloat16_physical_width(self):
        tensor = Tensor.from_numpy(np.ones(4, dtype=np.float32), dtype="bfloat16")
        assert tensor.storage.physical_nbytes == 16  # float32 backing
        assert tensor.storage.nbytes == 8  # logical accounting
        with export_tensor_shm(tensor) as export:
            assert materialize_shm(export.handle).nbytes == 16

    def test_zero_dim_tensor(self):
        tensor = Tensor.from_numpy(np.float32(3.25))
        assert tensor.shape == ()
        with export_tensor_shm(tensor) as export:
            out = materialize_shm(export.handle)
            assert out.shape == ()
            assert out == np.float32(3.25)

    def test_empty_tensor(self):
        tensor = Tensor.from_numpy(np.zeros((0,), dtype=np.float32))
        with export_tensor_shm(tensor) as export:
            assert export.handle.storage_numel == 0
            out = materialize_shm(export.handle)
            assert out.shape == (0,)

    def test_strided_view_preserved(self):
        base = Tensor.from_numpy(np.arange(24, dtype=np.float32).reshape(4, 6))
        view = base.transpose(0, 1)[1:3]
        assert view.strides != base.strides or view.offset != 0
        with export_tensor_shm(view) as export:
            with attach_tensor_shm(export.handle) as attached:
                assert np.array_equal(attached._np(), view._np())

    def test_handle_pickles_small_and_exact(self):
        tensor = Tensor.from_numpy(_sample_array("float32", (64, 64)))
        with export_tensor_shm(tensor) as export:
            payload = pickle.dumps(export.handle)
            # O(metadata): the 16 KiB of weight bytes never enter the pickle.
            assert len(payload) < 1024
            handle = pickle.loads(payload)
            assert handle == export.handle
            assert np.array_equal(materialize_shm(handle), tensor.numpy())


class TestLifecycle:
    def test_export_close_unlinks(self):
        tensor = Tensor.from_numpy(np.ones(8, dtype=np.float32))
        export = export_tensor_shm(tensor)
        handle = export.handle
        export.close()
        with pytest.raises(FileNotFoundError):
            attach_tensor_shm(handle)

    def test_export_close_idempotent(self):
        export = export_tensor_shm(Tensor.from_numpy(np.ones(2, dtype=np.float32)))
        export.close()
        export.close()

    def test_lease_close_does_not_unlink(self):
        tensor = Tensor.from_numpy(np.arange(6, dtype=np.float32))
        with export_tensor_shm(tensor) as export:
            lease = attach_tensor_shm(export.handle)
            lease.close()
            lease.close()  # idempotent
            # Exporter still serves the block to later attaches.
            assert np.array_equal(materialize_shm(export.handle), tensor.numpy())

    def test_lease_closes_on_exception(self):
        tensor = Tensor.from_numpy(np.arange(6, dtype=np.float32))
        export = export_tensor_shm(tensor)
        lease = attach_tensor_shm(export.handle)
        with pytest.raises(RuntimeError, match="worker died"):
            with lease:
                raise RuntimeError("worker died")
        assert lease.tensor is None
        export.close()
        with pytest.raises(FileNotFoundError):
            attach_tensor_shm(export.handle)

    def test_gc_finalizer_unlinks_unclosed_export(self):
        export = export_tensor_shm(Tensor.from_numpy(np.ones(4, dtype=np.float32)))
        handle = export.handle
        del export  # no explicit close: the weakref.finalize safety net runs
        with pytest.raises(FileNotFoundError):
            attach_tensor_shm(handle)

    def test_attached_view_is_read_only(self):
        tensor = Tensor.from_numpy(np.arange(6, dtype=np.float32))
        with export_tensor_shm(tensor) as export:
            with attach_tensor_shm(export.handle) as attached:
                # The pages are shared by every worker and reused across
                # sweeps; a stray in-place write must fail loudly.
                with pytest.raises(ValueError):
                    attached.storage.data[0] = 99.0
                with pytest.raises(ValueError):
                    attached._np()[0] = 99.0
            # The exporter's own buffer is untouched and still writable.
            assert tensor.storage.data[0] == 0.0

    def test_attach_unknown_name_raises(self):
        handle = ShmTensorHandle(
            shm_name="repro_test_no_such_block",
            dtype_name="float32",
            storage_numel=4,
            shape=(4,),
            strides=(1,),
            offset=0,
            version=0,
        )
        with pytest.raises(FileNotFoundError):
            attach_tensor_shm(handle)


class TestDTypePickling:
    @pytest.mark.parametrize("dtype_name", sorted(_ALL))
    def test_dtype_unpickles_to_interned_singleton(self, dtype_name):
        dtype = get_dtype(dtype_name)
        assert pickle.loads(pickle.dumps(dtype)) is dtype


class TestLeaseRegistry:
    """Long-lived pinned attachments (the sticky process backend's habit)."""

    def test_acquire_reuses_lease_while_handle_unchanged(self):
        tensor = Tensor.from_numpy(_sample_array("float32"))
        with export_tensor_shm(tensor) as export:
            registry = ShmLeaseRegistry()
            try:
                first = registry.acquire("layer0", export.handle)
                second = registry.acquire("layer0", export.handle)
                assert second is first  # pinned: no re-attach, no re-map
                assert len(registry) == 1
                assert np.array_equal(first.tensor._np(), tensor._np())
            finally:
                registry.close_all()

    def test_acquire_rotates_lease_when_handle_changes(self):
        tensor = Tensor.from_numpy(_sample_array("float32"))
        registry = ShmLeaseRegistry()
        export_a = export_tensor_shm(tensor)
        try:
            first = registry.acquire("layer0", export_a.handle)
            # The exporter rotated the block (optimizer write re-export).
            tensor.copy_(tensor.numpy() * 2.0)
            export_b = export_tensor_shm(tensor)
            try:
                second = registry.acquire("layer0", export_b.handle)
                assert second is not first
                assert first.tensor is None  # old lease was closed
                assert len(registry) == 1
                assert np.array_equal(second.tensor._np(), tensor._np())
            finally:
                export_b.close()
        finally:
            registry.close_all()
            export_a.close()

    def test_close_all_releases_every_mapping(self):
        tensors = [Tensor.from_numpy(_sample_array("float32", (4,))) for _ in range(3)]
        exports = [export_tensor_shm(t) for t in tensors]
        registry = ShmLeaseRegistry()
        leases = [
            registry.acquire(f"layer{i}", export.handle)
            for i, export in enumerate(exports)
        ]
        registry.close_all()
        assert len(registry) == 0
        assert all(lease.tensor is None for lease in leases)
        for export in exports:
            export.close()

    def test_release_unknown_key_is_noop(self):
        ShmLeaseRegistry().release("never-acquired")
