"""Fast shape-checks of the experiment runners (full runs live in benchmarks/).

Each test asserts the *qualitative* paper result at a reduced scale: the
numbers regenerate in benchmarks/, these guard the direction of every claim.
"""

import pytest

from repro.bench import (
    PAPER_TABLE1,
    run_claims,
    run_fig2,
    run_fig3,
    run_hop_budget_sweep,
    run_table1,
    run_table2,
)
from repro.bench.tables import paper_vs_measured, render_table


class TestTable1:
    def test_matches_paper_exactly(self):
        rows = run_table1()
        for row, (line, gpu_mb, cpu_mb) in zip(rows, PAPER_TABLE1):
            assert row.line == line
            assert row.gpu_mb == pytest.approx(gpu_mb)
            assert row.cpu_mb == pytest.approx(cpu_mb)


class TestFig2:
    def test_marshaling_reduces_memory_and_traffic(self):
        base = run_fig2(marshal=False)
        marshal = run_fig2(marshal=True)
        assert marshal.cpu_peak_mb < base.cpu_peak_mb
        assert marshal.offload_traffic_mb < base.offload_traffic_mb
        assert marshal.copies_avoided >= 2
        assert base.copies_avoided == 0

    def test_view_dedup_requires_one_hop(self):
        sweep = run_hop_budget_sweep(budgets=(0, 1))
        assert sweep[0].copies_avoided < sweep[1].copies_avoided
        assert 1 in sweep[1].hops_histogram

    def test_oracle_strategy_agrees_with_graph(self):
        graph = run_fig2(marshal=True, strategy="graph")
        oracle = run_fig2(marshal=True, strategy="storage-id")
        assert graph.cpu_peak_mb == oracle.cpu_peak_mb
        assert graph.copies_avoided == oracle.copies_avoided


class TestFig3:
    def test_uniquification_reduces_and_reconstructs(self):
        result = run_fig3(n_weights=1 << 14)
        assert result.reconstruction_exact
        assert result.n_unique <= 1 << 16
        assert result.uniquify_reduction > 2
        assert result.total_reduction_per_learner > result.uniquify_reduction

    def test_sharding_divides_index_bytes(self):
        result = run_fig3(n_weights=1 << 14, n_learners=8)
        assert result.index_bytes_per_learner == -(-result.index_bytes // 8)


class TestTable2Shape:
    @pytest.fixture(scope="class")
    def result(self):
        # Reduced scale: dim 64 keeps this test fast.
        return run_table2(dim=64, n_heads=4, seq_len=8, iters=2, n_learners=4)

    def test_row_order(self, result):
        assert [r.name for r in result.rows] == [
            "baseline", "M", "M+U", "M+S", "M+U+S",
        ]

    def test_marshaling_reduces(self, result):
        base, m = result.rows[0], result.rows[1]
        assert result.reduction(m) > 1.3
        assert m.copies_avoided > 0

    def test_uniquification_compounds(self, result):
        m, mu = result.rows[1], result.rows[2]
        assert mu.cpu_peak_bytes < m.cpu_peak_bytes

    def test_sharding_compounds(self, result):
        m, ms = result.rows[1], result.rows[3]
        assert ms.cpu_peak_bytes < m.cpu_peak_bytes
        assert ms.tensors_sharded > 0

    def test_full_edkm_is_best(self, result):
        peaks = {r.name: r.cpu_peak_bytes for r in result.rows}
        assert peaks["M+U+S"] == min(peaks.values())
        assert result.reduction(result.rows[-1]) > 10


class TestClaims:
    def test_all_claims_within_10_percent(self):
        for claim in run_claims():
            assert claim.relative_error < 0.10, claim.label


class TestTableRendering:
    def test_render_table(self):
        text = render_table(
            ["a", "b"], [[1, 2.5], ["x", None]], title="T", float_fmt="{:.2f}"
        )
        assert "T" in text and "2.50" in text and "--" in text

    def test_paper_vs_measured(self):
        line = paper_vs_measured("claim", 12.6, 12.55)
        assert "12.6" in line and "12.55" in line
