"""Tests for palettization: bit packing, LUT artifacts, k-means palettes."""

import numpy as np
import pytest

from repro.core.palettize import (
    PalettizedTensor,
    kmeans_palettize,
    pack_indices,
    unpack_indices,
)


class TestBitPacking:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5, 8])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        indices = rng.integers(0, 2**bits, size=1000).astype(np.uint8)
        packed = pack_indices(indices, bits)
        assert np.array_equal(unpack_indices(packed, bits, 1000), indices)

    def test_packed_size(self):
        indices = np.zeros(1000, dtype=np.uint8)
        assert pack_indices(indices, 3).size == int(np.ceil(1000 * 3 / 8))
        assert pack_indices(indices, 4).size == 500

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            pack_indices(np.array([8]), bits=3)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_indices(np.array([0]), bits=0)
        with pytest.raises(ValueError):
            pack_indices(np.array([0]), bits=9)

    def test_empty(self):
        packed = pack_indices(np.array([], dtype=np.uint8), 3)
        assert np.array_equal(unpack_indices(packed, 3, 0), np.array([], dtype=np.uint8))


class TestPalettizedTensor:
    def test_from_weights_nearest_assignment(self):
        lut = np.array([-1.0, 0.0, 1.0, 2.0], dtype=np.float32)
        weights = np.array([[0.9, -0.8], [0.1, 2.4]], dtype=np.float32)
        p = PalettizedTensor.from_weights(weights, lut, bits=2)
        assert np.array_equal(
            p.dequantize(), [[1.0, -1.0], [0.0, 2.0]]
        )

    def test_shape_preserved(self):
        weights = np.random.default_rng(0).standard_normal((6, 7)).astype(np.float32)
        lut = np.linspace(-2, 2, 8).astype(np.float32)
        p = PalettizedTensor.from_weights(weights, lut, bits=3)
        assert p.shape == (6, 7)
        assert p.dequantize().shape == (6, 7)

    def test_nbytes_arithmetic(self):
        weights = np.zeros(1024, dtype=np.float32)
        lut = np.linspace(-1, 1, 8).astype(np.float32)
        p = PalettizedTensor.from_weights(weights, lut, bits=3)
        assert p.nbytes == int(np.ceil(1024 * 3 / 8)) + 8 * 2

    def test_bits_per_weight_close_to_nominal(self):
        weights = np.zeros(100_000, dtype=np.float32)
        lut = np.linspace(-1, 1, 8).astype(np.float32)
        p = PalettizedTensor.from_weights(weights, lut, bits=3)
        assert p.bits_per_weight == pytest.approx(3.0, abs=0.01)

    def test_lut_too_big_rejected(self):
        with pytest.raises(ValueError):
            PalettizedTensor.from_weights(
                np.zeros(4, dtype=np.float32), np.linspace(0, 1, 16), bits=3
            )

    def test_dequantize_error_bounded_by_lut_resolution(self):
        rng = np.random.default_rng(1)
        weights = rng.uniform(-1, 1, 5000).astype(np.float32)
        lut = np.linspace(-1, 1, 16).astype(np.float32)
        p = PalettizedTensor.from_weights(weights, lut, bits=4)
        max_err = np.abs(p.dequantize().reshape(-1) - weights).max()
        assert max_err <= (lut[1] - lut[0]) / 2 + 1e-6


class TestKMeansPalettize:
    def test_beats_uniform_grid_on_gaussian(self):
        rng = np.random.default_rng(0)
        weights = (rng.standard_normal(20_000) * 0.1).astype(np.float32)
        km = kmeans_palettize(weights, bits=3)
        uniform_lut = np.linspace(weights.min(), weights.max(), 8).astype(np.float32)
        uniform = PalettizedTensor.from_weights(weights, uniform_lut, bits=3)
        km_err = np.mean((km.dequantize().reshape(-1) - weights) ** 2)
        uniform_err = np.mean((uniform.dequantize().reshape(-1) - weights) ** 2)
        assert km_err < uniform_err

    def test_8bit_embedding_compression(self):
        rng = np.random.default_rng(1)
        table = (rng.standard_normal((1024, 32)) * 0.02).astype(np.float32)
        p = kmeans_palettize(table, bits=8)
        assert p.bits_per_weight < 8.2
        rel_err = np.mean((p.dequantize() - table) ** 2) / table.var()
        assert rel_err < 0.01

    def test_deterministic(self):
        weights = np.random.default_rng(2).standard_normal(1000).astype(np.float32)
        a = kmeans_palettize(weights, bits=3)
        b = kmeans_palettize(weights, bits=3)
        assert np.array_equal(a.lut, b.lut)
        assert np.array_equal(a.packed, b.packed)
