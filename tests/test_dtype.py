"""Tests for logical dtypes, bf16 simulation and 16-bit pattern keying."""

import numpy as np
import pytest

from repro.tensor import dtype as dt


class TestDTypeBasics:
    def test_float32_identity_projection(self):
        values = np.array([1.5, -2.25, 3.125], dtype=np.float32)
        assert np.array_equal(dt.float32.project(values), values)

    def test_itemsize_is_logical_not_physical(self):
        # bf16 is physically float32 but logically 2 bytes.
        assert dt.bfloat16.itemsize == 2
        assert dt.bfloat16.np_storage == np.float32

    def test_float16_physical_storage(self):
        assert dt.float16.np_storage == np.float16
        assert dt.float16.itemsize == 2

    def test_get_dtype_by_name(self):
        assert dt.get_dtype("float32") is dt.float32
        assert dt.get_dtype("bfloat16") is dt.bfloat16

    def test_get_dtype_aliases(self):
        assert dt.get_dtype("bf16") is dt.bfloat16
        assert dt.get_dtype("fp16") is dt.float16
        assert dt.get_dtype("half") is dt.float16

    def test_get_dtype_passthrough(self):
        assert dt.get_dtype(dt.int64) is dt.int64

    def test_get_dtype_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            dt.get_dtype("float8")

    def test_from_numpy_dtype(self):
        assert dt.from_numpy_dtype(np.dtype(np.float32)) is dt.float32
        assert dt.from_numpy_dtype(np.dtype(np.int64)) is dt.int64
        assert dt.from_numpy_dtype(np.dtype(np.bool_)) is dt.bool_

    def test_repr(self):
        assert repr(dt.bfloat16) == "repro.bfloat16"


class TestBF16Simulation:
    def test_projection_is_idempotent(self):
        values = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
        once = dt.bfloat16.project(values)
        twice = dt.bfloat16.project(once)
        assert np.array_equal(once, twice)

    def test_projection_clears_low_mantissa_bits(self):
        projected = dt.bfloat16.project(np.array([1.0000001], dtype=np.float32))
        bits = projected.view(np.uint32)
        assert (bits & 0xFFFF).item() == 0

    def test_projection_error_bounded(self):
        values = np.random.default_rng(1).standard_normal(4096).astype(np.float32)
        projected = dt.bfloat16.project(values)
        # bf16 has an 8-bit mantissa: relative error < 2^-8.
        rel = np.abs(projected - values) / np.maximum(np.abs(values), 1e-20)
        assert rel.max() < 2.0**-8

    def test_round_to_nearest_even(self):
        # 1 + 2^-9 is exactly halfway between two bf16 values; RNE keeps 1.0.
        halfway = np.float32(1.0 + 2.0**-9)
        assert dt.bfloat16.project(np.array([halfway]))[0] == np.float32(1.0)

    def test_special_values_preserved(self):
        values = np.array([0.0, -0.0, np.inf, -np.inf], dtype=np.float32)
        projected = dt.bfloat16.project(values)
        assert projected[0] == 0.0 and projected[1] == 0.0
        assert np.isposinf(projected[2]) and np.isneginf(projected[3])


class TestBitPatterns:
    def test_bf16_pattern_roundtrip(self):
        values = np.random.default_rng(2).standard_normal(512).astype(np.float32)
        projected = dt.bfloat16.project(values)
        patterns = dt.bit_pattern16(projected, dt.bfloat16)
        decoded = dt.decode_pattern16(patterns, dt.bfloat16)
        assert np.array_equal(decoded, projected)

    def test_fp16_pattern_roundtrip(self):
        values = np.random.default_rng(3).standard_normal(512).astype(np.float16)
        patterns = dt.bit_pattern16(values, dt.float16)
        decoded = dt.decode_pattern16(patterns, dt.float16)
        assert np.array_equal(decoded.astype(np.float16), values)

    def test_pattern_count_bounded_by_2_16(self):
        values = np.random.default_rng(4).standard_normal(1_000_00).astype(np.float32)
        patterns = dt.bit_pattern16(dt.bfloat16.project(values), dt.bfloat16)
        assert len(np.unique(patterns)) <= 2**16

    def test_equal_values_equal_patterns(self):
        values = dt.bfloat16.project(np.array([0.1, 0.1, 0.2], dtype=np.float32))
        patterns = dt.bit_pattern16(values, dt.bfloat16)
        assert patterns[0] == patterns[1]
        assert patterns[0] != patterns[2]

    def test_pattern_requires_16bit_dtype(self):
        with pytest.raises(ValueError, match="16-bit"):
            dt.bit_pattern16(np.zeros(4, dtype=np.float32), dt.float32)
        with pytest.raises(ValueError, match="16-bit"):
            dt.decode_pattern16(np.zeros(4, dtype=np.uint16), dt.float32)


class TestPromotion:
    def test_same_dtype(self):
        assert dt.promote(dt.float32, dt.float32) is dt.float32

    def test_float_beats_int(self):
        assert dt.promote(dt.float16, dt.int64) is dt.float16
        assert dt.promote(dt.int32, dt.float32) is dt.float32

    def test_wider_float_wins(self):
        assert dt.promote(dt.float16, dt.float32) is dt.float32
        assert dt.promote(dt.float64, dt.float32) is dt.float64

    def test_bf16_fp16_promote_to_float32(self):
        assert dt.promote(dt.bfloat16, dt.float16) is dt.float32
        assert dt.promote(dt.float16, dt.bfloat16) is dt.float32

    def test_int_widths(self):
        assert dt.promote(dt.int32, dt.int64) is dt.int64
        assert dt.promote(dt.uint8, dt.uint16) is dt.uint16
