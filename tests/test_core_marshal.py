"""Tests for cross-device tensor marshaling (registry and graph walk)."""

import gc

import numpy as np
import pytest

import repro.tensor as rt
from repro.core.config import EDKMConfig
from repro.core.marshal import MarshalRegistry, OffloadEntry


def _gpu_tensor(shape=(8, 8), seed=0, requires_grad=True):
    values = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
    return rt.Tensor.from_numpy(
        values, device="gpu", requires_grad=requires_grad
    )


def _entry_for(tensor):
    host = rt.Tensor.from_numpy(
        tensor.numpy().reshape(-1), dtype=tensor.dtype, device="cpu"
    )
    return OffloadEntry(host, tensor.storage, tensor.device)


class TestRegistryBasics:
    def test_register_and_find_same_tensor(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        entry, hops, trace = registry.find(t, hop_budget=4, strategy="graph")
        assert entry is not None
        assert hops == 0
        assert trace == []

    def test_miss_returns_none(self):
        registry = MarshalRegistry()
        entry, _, _ = registry.find(_gpu_tensor(), 4, "graph")
        assert entry is None

    def test_clear(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        registry.clear()
        assert len(registry) == 0
        assert registry.find(t, 4, "graph")[0] is None

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            MarshalRegistry().find(_gpu_tensor(), 4, "bogus")

    def test_dead_registered_tensor_not_resolved(self):
        registry = MarshalRegistry()
        base = _gpu_tensor()
        view = base.view(-1)
        registry.register(view, _entry_for(view))
        del view
        gc.collect()
        # The registered tensor (an intermediate) is dead: the walk from the
        # live base must not resolve its stale entry.
        entry, _, _ = registry.find(base, 4, "graph")
        assert entry is None

    def test_walk_through_dead_intermediates(self):
        """Autograd nodes persist after intermediate tensors die, so a view
        chain whose middles were garbage collected is still walkable."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x3 = x0.view(-1).view(8, 8).transpose(0, 1)  # middles die immediately
        gc.collect()
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(x3, 4, "graph")
        assert entry is not None
        assert hops == 3
        assert trace == ["Transpose", "View", "View"]


class TestGraphWalk:
    def test_one_hop_parent(self):
        """Pack x0 first; a view of x0 resolves via its producing op."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1, 1)
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(x1, 4, "graph")
        assert entry is not None
        assert hops == 1
        assert trace == ["View"]

    def test_one_hop_child(self):
        """Pack the view first; the base resolves via consumer edges."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1, 1)
        registry.register(x1, _entry_for(x1))
        entry, hops, _ = registry.find(x0, 4, "graph")
        assert entry is not None
        assert hops == 1

    def test_multi_hop_chain(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1)
        x2 = x1.view(8, 8)
        x3 = x2.transpose(0, 1)
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(x3, 4, "graph")
        assert entry is not None
        assert hops == 3
        assert trace == ["Transpose", "View", "View"]

    def test_hop_budget_limits_search(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x3 = x0.view(-1).view(8, 8).transpose(0, 1)
        registry.register(x0, _entry_for(x0))
        assert registry.find(x3, 2, "graph")[0] is None
        assert registry.find(x3, 3, "graph")[0] is not None

    def test_walk_does_not_cross_data_ops(self):
        """Non-storage-invariant ops (e.g. Mul) are not walkable edges."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        y = x0 * 2.0  # new storage
        registry.register(x0, _entry_for(x0))
        entry, _, _ = registry.find(y, 4, "graph")
        assert entry is None

    def test_sibling_views_resolve_through_base(self):
        """view A -> base -> view B is a 2-hop path."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        a = x0.view(-1)
        b = x0.transpose(0, 1)
        registry.register(a, _entry_for(a))
        entry, hops, _ = registry.find(b, 4, "graph")
        assert entry is not None
        assert hops == 2

    def test_storage_id_oracle_matches_graph(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1, 1)
        registry.register(x0, _entry_for(x0))
        graph_entry, _, _ = registry.find(x1, 4, "graph")
        oracle_entry, hops, _ = registry.find(x1, 4, "storage-id")
        assert graph_entry is oracle_entry
        assert hops == 0

    def test_slice_view_resolves(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        s = x0[2:5]
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(s, 4, "graph")
        assert entry is not None
        assert trace == ["Slice"]


class TestOffloadEntry:
    def test_host_nbytes_local_whole_copy(self):
        t = _gpu_tensor((4, 4))
        entry = _entry_for(t)
        assert entry.host_nbytes_local == 64

    def test_gpu_cache_weakrefs_storage(self):
        t = _gpu_tensor((4, 4))
        entry = _entry_for(t)
        cached = rt.Tensor.from_numpy(t.numpy().reshape(-1), device="gpu")
        entry.cache_gpu(cached)
        assert entry.cached_gpu_storage() is cached.storage
        # Another tensor sharing the storage keeps the cache alive.
        alias = cached.view(4, 4)
        del cached
        gc.collect()
        assert entry.cached_gpu_storage() is alias.storage
        del alias
        gc.collect()
        assert entry.cached_gpu_storage() is None

    def test_is_sharded_flag(self):
        from repro.distributed import LearnerGroup, shard_rows

        t = _gpu_tensor((4, 4))
        whole = _entry_for(t)
        assert not whole.is_sharded
        group = LearnerGroup(2)
        sharded_copy = shard_rows(t.view(-1), group)
        sharded = OffloadEntry(sharded_copy, t.storage, t.device)
        assert sharded.is_sharded
        assert sharded.host_nbytes_local == 32


class TestConfigValidation:
    def test_shard_requires_group(self):
        with pytest.raises(ValueError, match="LearnerGroup"):
            EDKMConfig(shard=True, group=None)

    def test_strategy_validated(self):
        with pytest.raises(ValueError, match="strategy"):
            EDKMConfig(shard=False, group=None, search_strategy="hash")

    def test_negative_hop_budget(self):
        with pytest.raises(ValueError):
            EDKMConfig(shard=False, group=None, hop_budget=-1)

    def test_baseline_has_no_optimizations(self):
        config = EDKMConfig.baseline_offload()
        assert config.offload
        assert not config.marshal and not config.uniquify and not config.shard
