"""Tests for cross-device tensor marshaling (registry and graph walk)."""

import gc
import weakref

import numpy as np
import pytest

import repro.tensor as rt
from repro.core.config import EDKMConfig
from repro.core.marshal import (
    FINGERPRINT_BLOCK_BYTES,
    MarshalRegistry,
    OffloadEntry,
    fingerprint_sample_offsets,
    fingerprint_storage,
)


def _gpu_tensor(shape=(8, 8), seed=0, requires_grad=True):
    values = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
    return rt.Tensor.from_numpy(
        values, device="gpu", requires_grad=requires_grad
    )


def _entry_for(tensor):
    host = rt.Tensor.from_numpy(
        tensor.numpy().reshape(-1), dtype=tensor.dtype, device="cpu"
    )
    return OffloadEntry(host, tensor.storage, tensor.device)


class TestRegistryBasics:
    def test_register_and_find_same_tensor(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        entry, hops, trace = registry.find(t, hop_budget=4, strategy="graph")
        assert entry is not None
        assert hops == 0
        assert trace == []

    def test_miss_returns_none(self):
        registry = MarshalRegistry()
        entry, _, _ = registry.find(_gpu_tensor(), 4, "graph")
        assert entry is None

    def test_clear(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        registry.clear()
        assert len(registry) == 0
        assert registry.find(t, 4, "graph")[0] is None

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            MarshalRegistry().find(_gpu_tensor(), 4, "bogus")

    def test_dead_registered_tensor_not_resolved(self):
        registry = MarshalRegistry()
        base = _gpu_tensor()
        view = base.view(-1)
        registry.register(view, _entry_for(view))
        del view
        gc.collect()
        # The registered tensor (an intermediate) is dead: the walk from the
        # live base must not resolve its stale entry.
        entry, _, _ = registry.find(base, 4, "graph")
        assert entry is None

    def test_walk_through_dead_intermediates(self):
        """Autograd nodes persist after intermediate tensors die, so a view
        chain whose middles were garbage collected is still walkable."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x3 = x0.view(-1).view(8, 8).transpose(0, 1)  # middles die immediately
        gc.collect()
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(x3, 4, "graph")
        assert entry is not None
        assert hops == 3
        assert trace == ["Transpose", "View", "View"]


class TestGraphWalk:
    def test_one_hop_parent(self):
        """Pack x0 first; a view of x0 resolves via its producing op."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1, 1)
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(x1, 4, "graph")
        assert entry is not None
        assert hops == 1
        assert trace == ["View"]

    def test_one_hop_child(self):
        """Pack the view first; the base resolves via consumer edges."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1, 1)
        registry.register(x1, _entry_for(x1))
        entry, hops, _ = registry.find(x0, 4, "graph")
        assert entry is not None
        assert hops == 1

    def test_multi_hop_chain(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1)
        x2 = x1.view(8, 8)
        x3 = x2.transpose(0, 1)
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(x3, 4, "graph")
        assert entry is not None
        assert hops == 3
        assert trace == ["Transpose", "View", "View"]

    def test_hop_budget_limits_search(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x3 = x0.view(-1).view(8, 8).transpose(0, 1)
        registry.register(x0, _entry_for(x0))
        assert registry.find(x3, 2, "graph")[0] is None
        assert registry.find(x3, 3, "graph")[0] is not None

    def test_walk_does_not_cross_data_ops(self):
        """Non-storage-invariant ops (e.g. Mul) are not walkable edges."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        y = x0 * 2.0  # new storage
        registry.register(x0, _entry_for(x0))
        entry, _, _ = registry.find(y, 4, "graph")
        assert entry is None

    def test_sibling_views_resolve_through_base(self):
        """view A -> base -> view B is a 2-hop path."""
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        a = x0.view(-1)
        b = x0.transpose(0, 1)
        registry.register(a, _entry_for(a))
        entry, hops, _ = registry.find(b, 4, "graph")
        assert entry is not None
        assert hops == 2

    def test_storage_id_oracle_matches_graph(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        x1 = x0.view(-1, 1)
        registry.register(x0, _entry_for(x0))
        graph_entry, _, _ = registry.find(x1, 4, "graph")
        oracle_entry, hops, _ = registry.find(x1, 4, "storage-id")
        assert graph_entry is oracle_entry
        assert hops == 0

    def test_slice_view_resolves(self):
        registry = MarshalRegistry()
        x0 = _gpu_tensor()
        s = x0[2:5]
        registry.register(x0, _entry_for(x0))
        entry, hops, trace = registry.find(s, 4, "graph")
        assert entry is not None
        assert trace == ["Slice"]


def _dead_ref():
    class _Gone:
        pass

    obj = _Gone()
    ref = weakref.ref(obj)
    del obj
    gc.collect()
    assert ref() is None
    return ref


class TestStaleIdEviction:
    """A stale id detected on either table must evict *both* sides.

    CPython recycles object addresses after garbage collection, so a dead
    counterpart left behind by a one-sided eviction could later resolve a
    recycled id to the wrong entry.  The dead weakrefs are installed by
    hand because forcing the allocator to actually recycle a specific id
    is nondeterministic.
    """

    def _register_with_dead_refs(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        tid, sid = id(t), id(t.storage)
        dead = _dead_ref()
        _, entry, skey = registry._by_tensor_id[tid]
        registry._by_tensor_id[tid] = (dead, entry, skey)
        _, entry, tkey = registry._by_storage_id[sid]
        registry._by_storage_id[sid] = (dead, entry, tkey)
        return registry, t, tid, sid

    def test_stale_tensor_id_evicts_storage_side(self):
        registry, t, tid, sid = self._register_with_dead_refs()
        entry, _, _ = registry.find(t, 4, "graph")  # _lookup_tensor sees stale
        assert entry is None
        assert tid not in registry._by_tensor_id
        assert sid not in registry._by_storage_id

    def test_stale_storage_id_evicts_tensor_side(self):
        registry, t, tid, sid = self._register_with_dead_refs()
        entry, _, _ = registry.find(t, 4, "storage-id")
        assert entry is None
        assert sid not in registry._by_storage_id
        assert tid not in registry._by_tensor_id

    def test_eviction_spares_unrelated_reregistration(self):
        """If the counterpart slot was re-claimed by a newer entry, the
        stale eviction must not take the newer entry down with it."""
        registry, t, tid, sid = self._register_with_dead_refs()
        # A fresh registration overwrites the storage slot with a new entry.
        fresh = _entry_for(t)
        live_ref = weakref.ref(t.storage)
        registry._by_storage_id[sid] = (live_ref, fresh, id(t))
        registry._evict_tensor_key(tid)
        assert tid not in registry._by_tensor_id
        assert registry._by_storage_id[sid][1] is fresh


def _unsampled_victim(storage, max_samples):
    """Index of the first float whose 4 bytes all fall outside the sampled
    blocks -- mutating it changes the content but not the digest."""
    offsets = fingerprint_sample_offsets(storage.nbytes, max_samples)
    sampled = set()
    for off in offsets:
        sampled.update(range(off, off + FINGERPRINT_BLOCK_BYTES))
    return next(
        i
        for i in range(storage.numel)
        if not (sampled & set(range(4 * i, 4 * i + 4)))
    )


class TestFingerprint:
    def test_sample_offsets_are_sqrt_bounded(self):
        nbytes = 4 << 20
        offsets = fingerprint_sample_offsets(nbytes, max_samples=64)
        assert len(offsets) <= 64  # the cap is hard, tail included
        assert offsets[0] == 0
        assert offsets[-1] >= nbytes - FINGERPRINT_BLOCK_BYTES
        sampled = len(offsets) * FINGERPRINT_BLOCK_BYTES
        assert sampled < nbytes // 16  # far cheaper than a full hash

    def test_sample_cap_is_hard_even_with_tail(self):
        for max_samples in (1, 2, 7, 64):
            for nbytes in (1, 63, 64, 65, 4096, 4097, 1 << 20):
                offsets = fingerprint_sample_offsets(nbytes, max_samples)
                assert len(offsets) <= max_samples, (max_samples, nbytes)
                assert offsets[-1] >= nbytes - FINGERPRINT_BLOCK_BYTES
                assert len(set(offsets)) == len(offsets)

    def test_fingerprint_deterministic_and_content_keyed(self):
        a = _gpu_tensor(seed=1)
        b = rt.Tensor.from_numpy(a.numpy(), device="gpu")
        fa, cost_a = fingerprint_storage(a.storage)
        fb, _ = fingerprint_storage(b.storage)
        assert fa == fb  # same bytes, distinct storages
        assert cost_a > 0
        c = _gpu_tensor(seed=2)
        assert fingerprint_storage(c.storage)[0] != fa

    def test_register_and_find_same_storage(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        entry, hops, trace = registry.find(t, 4, "fingerprint")
        assert entry is not None
        assert hops == 0 and trace == []

    def test_view_of_registered_storage_hits(self):
        """A view shares the storage object, so identity verification hits
        without any graph walk."""
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        entry, _, _ = registry.find(t.view(-1, 1), 4, "fingerprint")
        assert entry is not None

    def test_miss_returns_none(self):
        registry = MarshalRegistry()
        assert registry.find(_gpu_tensor(), 4, "fingerprint")[0] is None

    def _colliding_pair(self, registry):
        """Two storages whose sampled blocks agree but whose bytes differ.

        The sampled-stride hash skips bytes by construction; flipping a
        value inside an unsampled block forges a digest collision without
        touching the hash function.
        """
        n = 1 << 16  # 64 KB of float32 -> stride > 1 block
        base = np.zeros(n, dtype=np.float32)
        a = rt.Tensor.from_numpy(base.copy(), device="gpu", requires_grad=True)
        victim = _unsampled_victim(a.storage, registry.fingerprint_max_samples)
        forged = base.copy()
        forged[victim] = 123.456
        b = rt.Tensor.from_numpy(forged, device="gpu", requires_grad=True)
        assert (
            fingerprint_storage(a.storage)[0] == fingerprint_storage(b.storage)[0]
        )
        assert not np.array_equal(a.numpy(), b.numpy())
        return a, b

    def test_forced_collision_never_aliases(self):
        """Digest collision + different bytes must miss, not alias."""
        registry = MarshalRegistry(fingerprint_dedup_content=True)
        a, b = self._colliding_pair(registry)
        entry_a = _entry_for(a)
        registry.register(a, entry_a)
        found, _, _ = registry.find(b, 4, "fingerprint")
        assert found is None  # byte-compare backstop rejected the collision
        # After registering b too, each probe resolves to its own entry.
        entry_b = _entry_for(b)
        registry.register(b, entry_b)
        assert registry.find(a, 4, "fingerprint")[0] is entry_a
        assert registry.find(b, 4, "fingerprint")[0] is entry_b

    def test_forced_collision_misses_in_default_mode(self):
        registry = MarshalRegistry()
        a, b = self._colliding_pair(registry)
        registry.register(a, _entry_for(a))
        assert registry.find(b, 4, "fingerprint")[0] is None

    def test_content_dedup_requires_opt_in(self):
        """Byte-identical distinct storages: hit iff dedup_content is on."""
        t = _gpu_tensor(seed=3)
        twin = rt.Tensor.from_numpy(t.numpy(), device="gpu", requires_grad=True)

        strict = MarshalRegistry()
        strict.register(t, _entry_for(t))
        assert strict.find(twin, 4, "fingerprint")[0] is None

        content = MarshalRegistry(fingerprint_dedup_content=True)
        entry = _entry_for(t)
        content.register(t, entry)
        found, hops, trace = content.find(twin, 4, "fingerprint")
        assert found is entry
        assert trace == ["content-equal"]

    def test_byte_identical_different_dtypes_never_alias(self):
        """A float32 1.0 is bit-identical to an int32 1065353216; sharing a
        host copy would make unpack reinterpret the buffer.  The digest
        keys on dtype, and the content-dedup compare re-checks it."""
        ones_f32 = np.ones(64, dtype=np.float32)
        as_i32 = ones_f32.view(np.int32).copy()
        a = rt.Tensor.from_numpy(ones_f32, device="gpu", requires_grad=True)
        b = rt.Tensor.from_numpy(as_i32, device="gpu")
        assert a.storage.data.view(np.uint8).tobytes() == b.storage.data.view(
            np.uint8
        ).tobytes()
        assert fingerprint_storage(a.storage)[0] != fingerprint_storage(b.storage)[0]
        registry = MarshalRegistry(fingerprint_dedup_content=True)
        registry.register(a, _entry_for(a))
        assert registry.find(b, 4, "fingerprint")[0] is None

    def test_mutated_source_cannot_vouch_for_stale_snapshot(self):
        """Content-dedup compares against the candidate's *live* storage,
        but unpack serves the host snapshot taken at registration.  If the
        source was mutated in place after packing, a probe matching the
        mutated bytes must not be handed the stale snapshot."""
        registry = MarshalRegistry(fingerprint_dedup_content=True)
        original = np.random.default_rng(0).standard_normal(64).astype(np.float32)
        mutated = np.random.default_rng(1).standard_normal(64).astype(np.float32)
        a = rt.Tensor.from_numpy(original, device="gpu", requires_grad=True)
        registry.register(a, _entry_for(a))  # snapshot holds `original`
        registry.find(a, 4, "fingerprint")  # drain while pre-mutation
        a.copy_(mutated)  # in-place write bumps storage.version
        b = rt.Tensor.from_numpy(mutated, device="gpu", requires_grad=True)
        # b's bytes equal a's *current* storage, but a's host snapshot
        # still holds the original values -- must miss.
        assert registry.find(b, 4, "fingerprint")[0] is None

    def test_mutated_registered_storage_conservatively_misses(self):
        """An in-place write to a registered storage changes its digest,
        so a later probe of the same storage misses (where the storage-id
        oracle would serve its stale pre-write snapshot).  The oracle
        equivalence the benchmark asserts is scoped to storages left
        unmutated within the step -- the contract every strategy assumes."""
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        registry.find(t, 4, "fingerprint")  # drain under the old digest
        t.copy_(t._compute() * 2.0)  # bumps storage.version
        assert registry.find(t, 4, "fingerprint")[0] is None
        assert registry.find(t, 4, "storage-id")[0] is not None  # stale oracle

    def test_mutation_at_unsampled_offset_also_misses(self):
        """A write touching only unsampled bytes leaves the digest intact,
        so the bucket is still found -- the identity path's version check
        is what must reject the stale snapshot then."""
        registry = MarshalRegistry()
        a, _ = self._colliding_pair(registry)  # a is 64KB of zeros
        registry.register(a, _entry_for(a))
        registry.find(a, 4, "fingerprint")  # drain pre-mutation
        victim = _unsampled_victim(a.storage, registry.fingerprint_max_samples)
        mutated = a._compute().copy()
        mutated[victim] = 7.0
        a.copy_(mutated)  # bumps version; digest unchanged
        assert registry.find(a, 4, "fingerprint")[0] is None

    def test_mutation_before_first_probe_also_misses(self):
        """Same guarantee for the register -> mutate -> first-probe order:
        the lazy drain must not index the mutated bytes against the
        pre-mutation host snapshot (the identity path has no version
        check, so a drain-time guard is what keeps it honest)."""
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        t.copy_(t._compute() * 2.0)  # mutate while still pending
        assert registry.find(t, 4, "fingerprint")[0] is None

    def test_each_storage_hashed_once(self):
        """The miss-probe's digest is memoized, so the registration drain
        must not hash the same storage a second time (the probe-cost
        metric would otherwise be inflated 2x)."""
        from repro.core.config import PipelineStats

        registry = MarshalRegistry()
        stats = PipelineStats()
        t = _gpu_tensor()
        registry.find(t, 4, "fingerprint", stats)  # miss, hashes t
        after_probe = stats.fingerprint_bytes_hashed
        assert after_probe > 0
        registry.register(t, _entry_for(t))
        entry, _, _ = registry.find(t, 4, "fingerprint", stats)  # drain + hit
        assert entry is not None
        assert stats.fingerprint_bytes_hashed == after_probe

    def test_dead_storage_pruned_from_bucket(self):
        registry = MarshalRegistry()
        t = _gpu_tensor()
        registry.register(t, _entry_for(t))
        registry.find(t, 4, "fingerprint")  # drains the pending queue
        probe = rt.Tensor.from_numpy(t.numpy(), device="gpu")
        del t
        gc.collect()
        assert registry.find(probe, 4, "fingerprint")[0] is None
        assert not registry._by_fingerprint  # dead bucket reclaimed


class TestOffloadEntry:
    def test_host_nbytes_local_whole_copy(self):
        t = _gpu_tensor((4, 4))
        entry = _entry_for(t)
        assert entry.host_nbytes_local == 64

    def test_gpu_cache_weakrefs_storage(self):
        t = _gpu_tensor((4, 4))
        entry = _entry_for(t)
        cached = rt.Tensor.from_numpy(t.numpy().reshape(-1), device="gpu")
        entry.cache_gpu(cached)
        assert entry.cached_gpu_storage() is cached.storage
        # Another tensor sharing the storage keeps the cache alive.
        alias = cached.view(4, 4)
        del cached
        gc.collect()
        assert entry.cached_gpu_storage() is alias.storage
        del alias
        gc.collect()
        assert entry.cached_gpu_storage() is None

    def test_is_sharded_flag(self):
        from repro.distributed import LearnerGroup, shard_rows

        t = _gpu_tensor((4, 4))
        whole = _entry_for(t)
        assert not whole.is_sharded
        group = LearnerGroup(2)
        sharded_copy = shard_rows(t.view(-1), group)
        sharded = OffloadEntry(sharded_copy, t.storage, t.device)
        assert sharded.is_sharded
        assert sharded.host_nbytes_local == 32


class TestConfigValidation:
    def test_default_config_is_constructible(self):
        """Regression: ``EDKMConfig()`` used to raise because the dataclass
        defaults were ``shard=True, group=None`` -- mutually inconsistent."""
        config = EDKMConfig()
        assert config.offload and config.marshal and config.uniquify
        assert config.shard is False  # auto-downgraded: no learner group

    def test_shard_auto_enables_with_group(self):
        from repro.distributed import LearnerGroup

        assert EDKMConfig(group=LearnerGroup(2)).shard is True

    def test_explicit_shard_false_with_group_stays_false(self):
        from repro.distributed import LearnerGroup

        assert EDKMConfig(shard=False, group=LearnerGroup(2)).shard is False

    def test_shard_requires_group(self):
        with pytest.raises(ValueError, match="LearnerGroup"):
            EDKMConfig(shard=True, group=None)

    def test_strategy_validated(self):
        with pytest.raises(ValueError, match="strategy"):
            EDKMConfig(shard=False, group=None, search_strategy="hash")

    def test_fingerprint_strategy_accepted(self):
        config = EDKMConfig(search_strategy="fingerprint")
        assert config.fingerprint_max_samples == 64
        assert config.fingerprint_dedup_content is False

    def test_fingerprint_max_samples_validated(self):
        with pytest.raises(ValueError, match="fingerprint_max_samples"):
            EDKMConfig(fingerprint_max_samples=0)

    def test_negative_hop_budget(self):
        with pytest.raises(ValueError):
            EDKMConfig(shard=False, group=None, hop_budget=-1)

    def test_baseline_has_no_optimizations(self):
        config = EDKMConfig.baseline_offload()
        assert config.offload
        assert not config.marshal and not config.uniquify and not config.shard
