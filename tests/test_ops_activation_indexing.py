"""Forward values and gradients of activations and indexing ops."""

import numpy as np
import pytest
import scipy.special

import repro.tensor as rt
from repro.tensor import ops

from tests.gradcheck import check_gradients


def _arr(shape, seed=0, scale=1.0):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(
        np.float32
    )


class TestActivations:
    def test_softmax_matches_scipy(self):
        a = _arr((3, 5))
        out = ops.softmax(rt.tensor(a), dim=1)
        assert np.allclose(out.numpy(), scipy.special.softmax(a, axis=1), rtol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        out = ops.softmax(rt.tensor(_arr((4, 7))), dim=-1)
        assert np.allclose(out.numpy().sum(axis=-1), 1.0, rtol=1e-5)

    def test_softmax_stability_large_logits(self):
        out = ops.softmax(rt.tensor([[1000.0, 1000.0]]), dim=1)
        assert np.allclose(out.numpy(), [[0.5, 0.5]])

    def test_log_softmax(self):
        a = _arr((3, 5))
        out = ops.log_softmax(rt.tensor(a), dim=1)
        assert np.allclose(
            out.numpy(), scipy.special.log_softmax(a, axis=1), rtol=1e-5
        )

    def test_relu(self):
        a = rt.tensor([-1.0, 0.0, 2.0])
        assert np.array_equal(ops.relu(a).numpy(), [0.0, 0.0, 2.0])

    def test_sigmoid_tanh(self):
        a = _arr((5,))
        assert np.allclose(
            ops.sigmoid(rt.tensor(a)).numpy(), scipy.special.expit(a), rtol=1e-5
        )
        assert np.allclose(ops.tanh(rt.tensor(a)).numpy(), np.tanh(a), rtol=1e-5)

    def test_silu(self):
        a = _arr((5,))
        assert np.allclose(
            ops.silu(rt.tensor(a)).numpy(), a * scipy.special.expit(a), rtol=1e-5
        )

    def test_sigmoid_extreme_values_stable(self):
        out = ops.sigmoid(rt.tensor([-100.0, 100.0])).numpy()
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-8)
        assert out[1] == pytest.approx(1.0, abs=1e-8)

    def test_softmax_grad(self):
        check_gradients(
            lambda ts: ops.softmax(ts[0], dim=1) * rt.tensor(_arr((2, 4), 9)),
            [_arr((2, 4))],
        )

    def test_log_softmax_grad(self):
        check_gradients(
            lambda ts: ops.log_softmax(ts[0], dim=0) * rt.tensor(_arr((3, 2), 9)),
            [_arr((3, 2))],
        )

    def test_silu_grad(self):
        check_gradients(lambda ts: ops.silu(ts[0]), [_arr((5,))])

    def test_gelu_grad(self):
        check_gradients(lambda ts: ops.gelu(ts[0]), [_arr((5,))])

    def test_sigmoid_grad(self):
        check_gradients(lambda ts: ops.sigmoid(ts[0]), [_arr((5,))])

    def test_tanh_grad(self):
        check_gradients(lambda ts: ops.tanh(ts[0]), [_arr((5,))])

    def test_relu_grad(self):
        a = rt.tensor([-1.0, 2.0], requires_grad=True)
        ops.relu(a).sum().backward()
        assert np.array_equal(a.grad.numpy(), [0.0, 1.0])


class TestIndexing:
    def test_index_select_values(self):
        w = _arr((6, 3))
        idx = rt.tensor(np.array([0, 2, 2, 5]))
        out = ops.index_select(rt.tensor(w), idx)
        assert np.array_equal(out.numpy(), w[[0, 2, 2, 5]])

    def test_index_select_2d_indices(self):
        w = _arr((6, 3))
        idx = rt.tensor(np.array([[0, 1], [2, 3]]))
        out = ops.embedding(rt.tensor(w), idx)
        assert out.shape == (2, 2, 3)

    def test_index_select_grad_accumulates_duplicates(self):
        w = rt.tensor(_arr((4, 2)), requires_grad=True)
        idx = rt.tensor(np.array([1, 1, 3]))
        ops.index_select(w, idx).sum().backward()
        expected = np.zeros((4, 2), dtype=np.float32)
        expected[1] = 2.0
        expected[3] = 1.0
        assert np.array_equal(w.grad.numpy(), expected)

    def test_index_select_bounds_check(self):
        w = rt.tensor(_arr((4, 2)))
        with pytest.raises(IndexError):
            ops.index_select(w, rt.tensor(np.array([4])))

    def test_index_select_rejects_float_indices(self):
        with pytest.raises(TypeError):
            ops.index_select(rt.tensor(_arr((4, 2))), rt.tensor([0.0]))

    def test_take_along_dim(self):
        a = _arr((3, 5))
        idx = np.array([[1], [0], [4]])
        out = ops.take_along_dim(rt.tensor(a), rt.tensor(idx), dim=1)
        assert np.array_equal(out.numpy(), np.take_along_axis(a, idx, axis=1))

    def test_take_along_dim_grad(self):
        a = rt.tensor(_arr((2, 3)), requires_grad=True)
        idx = rt.tensor(np.array([[0, 0], [2, 1]]))
        ops.take_along_dim(a, idx, dim=1).sum().backward()
        expected = np.array([[2.0, 0.0, 0.0], [0.0, 1.0, 1.0]], dtype=np.float32)
        assert np.array_equal(a.grad.numpy(), expected)

    def test_masked_fill(self):
        a = rt.tensor(_arr((2, 2)))
        mask = np.array([[True, False], [False, True]])
        out = ops.masked_fill(a, mask, -9.0)
        assert out.numpy()[0, 0] == -9.0
        assert out.numpy()[0, 1] == a.numpy()[0, 1]

    def test_masked_fill_grad_blocked_by_mask(self):
        a = rt.tensor(_arr((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        ops.masked_fill(a, mask, 0.0).sum().backward()
        assert a.grad.numpy()[0, 0] == 0.0
        assert a.grad.numpy()[1, 1] == 1.0

    def test_where(self):
        a, b = rt.tensor([1.0, 2.0]), rt.tensor([10.0, 20.0])
        cond = np.array([True, False])
        assert np.array_equal(ops.where(cond, a, b).numpy(), [1.0, 20.0])

    def test_where_grad(self):
        a = rt.tensor([1.0, 2.0], requires_grad=True)
        b = rt.tensor([10.0, 20.0], requires_grad=True)
        cond = np.array([True, False])
        ops.where(cond, a, b).sum().backward()
        assert np.array_equal(a.grad.numpy(), [1.0, 0.0])
        assert np.array_equal(b.grad.numpy(), [0.0, 1.0])

    def test_one_hot(self):
        out = ops.one_hot(rt.tensor(np.array([0, 2])), num_classes=3)
        assert np.array_equal(out.numpy(), [[1, 0, 0], [0, 0, 1]])

    def test_causal_mask(self):
        mask = ops.causal_mask(3)
        assert np.array_equal(
            mask, [[False, True, True], [False, False, True], [False, False, False]]
        )
