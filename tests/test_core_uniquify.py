"""Tests for weight uniquification (paper Section 2.2 / Fig. 3)."""

import numpy as np
import pytest

from repro.core.uniquify import (
    MAX_UNIQUE_16BIT,
    attention_table,
    dense_attention_map,
    index_dtype_for,
    reconstruct_attention_map,
    uniquify,
)
from repro.tensor.dtype import bfloat16, float16, uint16, int32


def _weights(n=5000, seed=0, dtype=bfloat16):
    values = (np.random.default_rng(seed).standard_normal(n) * 0.05).astype(np.float32)
    return dtype.project(values)


class TestUniquify:
    def test_reconstruction_is_lossless(self):
        w = _weights()
        unique = uniquify(w, bfloat16)
        assert np.array_equal(unique.reconstruct_values().astype(np.float32), w)

    def test_unique_count_bounded(self):
        unique = uniquify(_weights(200_000), bfloat16)
        assert unique.n_unique <= MAX_UNIQUE_16BIT
        assert unique.n_unique < unique.n_weights

    def test_counts_sum_to_n(self):
        unique = uniquify(_weights(), bfloat16)
        assert unique.counts.sum() == unique.n_weights

    def test_duplicates_share_index(self):
        w = bfloat16.project(np.array([0.5, 0.25, 0.5, 0.5], dtype=np.float32))
        unique = uniquify(w, bfloat16)
        assert unique.n_unique == 2
        idx = unique.index_list
        assert idx[0] == idx[2] == idx[3]
        assert idx[0] != idx[1]

    def test_multidim_shape_preserved(self):
        w = _weights(120).reshape(10, 12)
        unique = uniquify(w, bfloat16)
        assert unique.source_shape == (10, 12)
        assert unique.reconstruct_values().shape == (10, 12)

    def test_fp16_keying(self):
        w = np.random.default_rng(1).standard_normal(1000).astype(np.float16)
        unique = uniquify(w, float16)
        assert np.allclose(
            unique.reconstruct_values(), w.astype(np.float32), atol=1e-6
        )

    def test_compression_ratio(self):
        unique = uniquify(_weights(50_000), bfloat16)
        assert unique.compression_ratio > 10  # heavy duplication at bf16

    def test_index_dtype_selection(self):
        assert index_dtype_for(10) is uint16
        assert index_dtype_for(MAX_UNIQUE_16BIT) is uint16
        assert index_dtype_for(MAX_UNIQUE_16BIT + 1) is int32


class TestAttentionTable:
    def test_rows_sum_to_one(self):
        table = attention_table(np.linspace(-1, 1, 50), np.linspace(-1, 1, 8), 0.01)
        assert np.allclose(table.sum(axis=1), 1.0, rtol=1e-6)

    def test_nearest_centroid_dominates_at_low_temperature(self):
        centroids = np.array([-1.0, 0.0, 1.0], dtype=np.float32)
        table = attention_table(np.array([0.05]), centroids, 1e-4)
        assert table[0].argmax() == 1
        assert table[0, 1] > 0.99

    def test_uniform_at_high_temperature(self):
        centroids = np.array([-1.0, 0.0, 1.0], dtype=np.float32)
        table = attention_table(np.array([0.0]), centroids, 1e6)
        assert np.allclose(table[0], 1.0 / 3.0, atol=1e-3)

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            attention_table(np.zeros(2), np.zeros(2), 0.0)

    def test_equal_weights_equal_rows(self):
        """The theorem behind uniquification: equal bits => equal rows."""
        w = np.array([0.125, 0.125], dtype=np.float32)
        table = attention_table(w, np.linspace(-1, 1, 4), 0.01)
        assert np.array_equal(table[0], table[1])


class TestReconstruction:
    def test_table_lookup_equals_dense_map(self):
        """Fig. 3's factorization is exact: table[index] == dense map."""
        w = _weights(3000)
        centroids = np.linspace(w.min(), w.max(), 8).astype(np.float32)
        unique = uniquify(w, bfloat16)
        table = attention_table(unique.values, centroids, 1e-3)
        dense = dense_attention_map(w, centroids, 1e-3)
        rebuilt = reconstruct_attention_map(table, unique.index_list)
        assert np.array_equal(rebuilt, dense)

    def test_memory_arithmetic(self):
        """Table is O(|C|) rows; index list is O(|W|) narrow integers."""
        w = _weights(100_000)
        unique = uniquify(w, bfloat16)
        k = 8
        dense_bytes = unique.n_weights * k * 4
        table_bytes = unique.n_unique * k * 4
        index_bytes = unique.n_weights * 2
        assert table_bytes + index_bytes < dense_bytes / 5
