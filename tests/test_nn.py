"""Tests for the nn layer library."""

import numpy as np
import pytest

import repro.tensor as rt
import repro.nn as nn
from repro.nn.module import Parameter

from tests.gradcheck import check_gradients


def _arr(shape, seed=0, scale=1.0):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(
        np.float32
    )


class TestModule:
    def test_parameter_registration(self):
        layer = nn.Linear(3, 4)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert isinstance(names["weight"], Parameter)

    def test_nested_registration(self):
        model = nn.DecoderLayer(dim=8, n_heads=2, hidden_dim=16)
        names = dict(model.named_parameters())
        assert "attn.q_proj.weight" in names
        assert "mlp.down_proj.weight" in names
        assert "attn_norm.weight" in names

    def test_num_parameters(self):
        layer = nn.Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        a = nn.Linear(3, 4, rng=np.random.default_rng(1))
        b = nn.Linear(3, 4, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.numpy(), b.weight.numpy())
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.numpy(), b.weight.numpy())

    def test_load_state_dict_validates_keys(self):
        a = nn.Linear(3, 4)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight})

    def test_load_state_dict_validates_shapes(self):
        a = nn.Linear(3, 4)
        state = dict(a.state_dict())
        state["bias"] = rt.zeros(7)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = nn.DecoderLayer(dim=8, n_heads=2, hidden_dim=16)
        model.eval()
        assert not model.attn.q_proj.training
        model.train()
        assert model.attn.q_proj.training

    def test_to_device_preserves_param_identity(self):
        layer = nn.Linear(3, 4)
        weight = layer.weight
        layer.to("gpu")
        assert layer.weight is weight
        assert layer.weight.device.name == "gpu"

    def test_zero_grad(self):
        layer = nn.Linear(3, 4)
        out = layer(rt.tensor(_arr((2, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_module_list(self):
        modules = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(modules) == 2
        assert modules[0] is not modules[1]
        assert len(dict(modules.named_parameters())) == 4


class TestLinearEmbedding:
    def test_linear_matches_numpy(self):
        layer = nn.Linear(3, 4)
        x = _arr((5, 3))
        expected = x @ layer.weight.numpy().T + layer.bias.numpy()
        assert np.allclose(layer(rt.tensor(x)).numpy(), expected, rtol=1e-5)

    def test_linear_batched_input(self):
        layer = nn.Linear(3, 4)
        out = layer(rt.tensor(_arr((2, 5, 3))))
        assert out.shape == (2, 5, 4)

    def test_linear_no_bias(self):
        layer = nn.Linear(3, 4, bias=False)
        assert layer.bias is None
        assert layer(rt.tensor(_arr((2, 3)))).shape == (2, 4)

    def test_linear_grad(self):
        w = _arr((4, 3), 5, scale=0.5)

        def fn(ts):
            return ts[0] @ ts[1].transpose(0, 1)

        check_gradients(fn, [_arr((2, 3)), w])

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4)
        idx = rt.tensor(np.array([[1, 2], [3, 1]]))
        out = emb(idx)
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out.numpy()[0, 0], emb.weight.numpy()[1])

    def test_embedding_grad(self):
        emb = nn.Embedding(5, 3)
        idx = rt.tensor(np.array([0, 0, 2]))
        emb(idx).sum().backward()
        grad = emb.weight.grad.numpy()
        assert np.all(grad[0] == 2.0)
        assert np.all(grad[2] == 1.0)
        assert np.all(grad[1] == 0.0)


class TestNorms:
    def test_rmsnorm_unit_rms(self):
        norm = nn.RMSNorm(8)
        x = rt.tensor(_arr((4, 8), scale=3.0))
        out = norm(x).numpy()
        rms = np.sqrt((out**2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_rmsnorm_scale_applied(self):
        norm = nn.RMSNorm(4)
        norm.weight.copy_(np.array([2.0, 2.0, 2.0, 2.0]))
        x = rt.tensor(_arr((2, 4)))
        out = norm(x).numpy()
        rms = np.sqrt((out**2).mean(axis=-1))
        assert np.allclose(rms, 2.0, atol=1e-3)

    def test_layernorm_zero_mean_unit_var(self):
        norm = nn.LayerNorm(8)
        out = norm(rt.tensor(_arr((4, 8), scale=5.0))).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-2)

    def test_rmsnorm_grad(self):
        norm = nn.RMSNorm(4)

        def fn(ts):
            mean_square = (ts[0] * ts[0]).mean(dim=-1, keepdim=True)
            return ts[0] / (mean_square + 1e-5).sqrt()

        check_gradients(fn, [_arr((3, 4))])


class TestRoPE:
    def test_rotation_preserves_norm(self):
        rope = nn.RotaryEmbedding(head_dim=8, max_seq_len=16)
        x = rt.tensor(_arr((1, 2, 6, 8)))
        out = rope.apply(x)
        assert np.allclose(
            np.linalg.norm(out.numpy(), axis=-1),
            np.linalg.norm(x.numpy(), axis=-1),
            rtol=1e-4,
        )

    def test_position_zero_unchanged(self):
        rope = nn.RotaryEmbedding(head_dim=8, max_seq_len=16)
        x = rt.tensor(_arr((1, 1, 4, 8)))
        out = rope.apply(x)
        assert np.allclose(out.numpy()[0, 0, 0], x.numpy()[0, 0, 0], atol=1e-6)

    def test_relative_property(self):
        # Dot product of rotated q/k depends only on relative offset.
        rope = nn.RotaryEmbedding(head_dim=8, max_seq_len=32)
        q = _arr((8,), 1)
        k = _arr((8,), 2)

        def rotated_dot(pos_q, pos_k):
            x = np.zeros((1, 1, 32, 8), dtype=np.float32)
            x[0, 0, pos_q] = q
            y = np.zeros((1, 1, 32, 8), dtype=np.float32)
            y[0, 0, pos_k] = k
            rq = rope.apply(rt.tensor(x)).numpy()[0, 0, pos_q]
            rk = rope.apply(rt.tensor(y)).numpy()[0, 0, pos_k]
            return float(rq @ rk)

        assert rotated_dot(3, 5) == pytest.approx(rotated_dot(10, 12), rel=1e-4)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            nn.RotaryEmbedding(head_dim=7, max_seq_len=8)

    def test_sequence_too_long_rejected(self):
        rope = nn.RotaryEmbedding(head_dim=4, max_seq_len=4)
        with pytest.raises(ValueError):
            rope.apply(rt.tensor(_arr((1, 1, 8, 4))))


class TestAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadAttention(dim=16, n_heads=4, max_seq_len=8)
        out = attn(rt.tensor(_arr((2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_causality(self):
        """Changing a future token must not affect earlier outputs."""
        attn = nn.MultiHeadAttention(dim=16, n_heads=4, max_seq_len=8)
        x = _arr((1, 6, 16))
        out_a = attn(rt.tensor(x)).numpy()
        x_mod = x.copy()
        x_mod[0, 4] += 10.0  # perturb position 4
        out_b = attn(rt.tensor(x_mod)).numpy()
        assert np.allclose(out_a[0, :4], out_b[0, :4], atol=1e-5)
        assert not np.allclose(out_a[0, 4:], out_b[0, 4:], atol=1e-3)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(dim=10, n_heads=3)

    def test_gradients_flow_to_all_projections(self):
        attn = nn.MultiHeadAttention(dim=8, n_heads=2, max_seq_len=4)
        out = attn(rt.tensor(_arr((1, 3, 8))))
        (out * out).sum().backward()
        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.o_proj):
            assert proj.weight.grad is not None
            assert float(np.abs(proj.weight.grad.numpy()).max()) > 0


class TestTransformer:
    def test_logits_shape(self):
        model = nn.Transformer(
            vocab_size=50, dim=16, n_layers=2, n_heads=2, hidden_dim=32, max_seq_len=8
        )
        tokens = rt.tensor(np.array([[1, 2, 3], [4, 5, 6]]))
        assert model(tokens).shape == (2, 3, 50)

    def test_deterministic_given_seed(self):
        kwargs = dict(
            vocab_size=20, dim=8, n_layers=1, n_heads=2, hidden_dim=16, seed=7
        )
        a = nn.Transformer(**kwargs)
        b = nn.Transformer(**kwargs)
        tokens = rt.tensor(np.array([[1, 2, 3]]))
        assert np.array_equal(a(tokens).numpy(), b(tokens).numpy())


class TestLoss:
    def test_cross_entropy_matches_manual(self):
        logits = _arr((2, 3, 5))
        targets = np.array([[1, 2, 0], [4, 3, 1]])
        loss = nn.cross_entropy(rt.tensor(logits), rt.tensor(targets))
        log_probs = logits - scipy_logsumexp(logits)
        manual = -np.mean(
            [log_probs[i, j, targets[i, j]] for i in range(2) for j in range(3)]
        )
        assert loss.item() == pytest.approx(manual, rel=1e-4)

    def test_ignore_index_masks_positions(self):
        logits = _arr((1, 3, 5))
        targets = np.array([[1, nn.IGNORE_INDEX, 2]])
        loss = nn.cross_entropy(rt.tensor(logits), rt.tensor(targets))
        log_probs = logits - scipy_logsumexp(logits)
        manual = -(log_probs[0, 0, 1] + log_probs[0, 2, 2]) / 2
        assert loss.item() == pytest.approx(manual, rel=1e-4)

    def test_all_masked_raises(self):
        logits = rt.tensor(_arr((1, 2, 5)))
        targets = rt.tensor(np.full((1, 2), nn.IGNORE_INDEX))
        with pytest.raises(ValueError):
            nn.cross_entropy(logits, targets)

    def test_loss_decreases_under_gradient_step(self):
        layer = nn.Linear(4, 6)
        x = rt.tensor(_arr((8, 4)))
        targets = rt.tensor(np.random.default_rng(0).integers(0, 6, size=(8,)))
        losses = []
        for _ in range(20):
            loss = nn.cross_entropy(layer(x), targets)
            layer.zero_grad()
            loss.backward()
            for p in layer.parameters():
                p.copy_(p._compute() - 0.5 * p.grad._compute())
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5

    def test_token_log_likelihoods_shape(self):
        logits = rt.tensor(_arr((2, 3, 5)))
        targets = rt.tensor(np.array([[1, 2, 0], [4, 3, 1]]))
        lls = nn.token_log_likelihoods(logits, targets)
        assert lls.shape == (2, 3)
        assert np.all(lls <= 0)


def scipy_logsumexp(logits):
    import scipy.special

    return scipy.special.logsumexp(logits, axis=-1, keepdims=True)
