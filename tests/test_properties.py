"""Property-based tests (hypothesis) for core invariants.

These target the load-bearing exactness claims of the reproduction:
uniquification is a *lossless* factorization, bit packing round-trips,
marshaling never changes gradients, and the tensor engine agrees with numpy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.tensor as rt
from repro.core import EDKMConfig, SavedTensorPipeline
from repro.core.palettize import pack_indices, unpack_indices
from repro.core.uniquify import (
    attention_table,
    dense_attention_map,
    reconstruct_attention_map,
    uniquify,
)
from repro.tensor.autograd import unbroadcast
from repro.tensor.dtype import bfloat16, bit_pattern16, decode_pattern16, float16

floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=32
)
small_arrays = hnp.arrays(
    dtype=np.float32, shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
    elements=floats,
)


class TestBitPatternProperties:
    @given(hnp.arrays(np.float32, st.integers(1, 200), elements=floats))
    @settings(max_examples=50, deadline=None)
    def test_bf16_decode_encode_identity(self, values):
        projected = bfloat16.project(values)
        patterns = bit_pattern16(projected, bfloat16)
        assert np.array_equal(decode_pattern16(patterns, bfloat16), projected)

    @given(hnp.arrays(np.float32, st.integers(1, 200), elements=floats))
    @settings(max_examples=50, deadline=None)
    def test_fp16_pattern_equality_iff_value_equality(self, values):
        projected = np.asarray(values, dtype=np.float16)
        patterns = bit_pattern16(projected, float16)
        decoded = decode_pattern16(patterns, float16)
        # Equal patterns <=> equal (bit-level) values.
        assert np.array_equal(
            decoded.astype(np.float16).view(np.uint16), projected.view(np.uint16)
        )


class TestUniquifyProperties:
    @given(
        hnp.arrays(np.float32, st.integers(2, 400), elements=floats),
        st.integers(2, 16),
    )
    @settings(max_examples=30, deadline=None)
    def test_factorization_is_lossless(self, values, k):
        weights = bfloat16.project(values * 0.01)
        centroids = np.linspace(weights.min() - 0.1, weights.max() + 0.1, k).astype(
            np.float32
        )
        unique = uniquify(weights, bfloat16)
        table = attention_table(unique.values, centroids, 1e-3)
        dense = dense_attention_map(weights, centroids, 1e-3)
        assert np.array_equal(
            reconstruct_attention_map(table, unique.index_list), dense
        )

    @given(hnp.arrays(np.float32, st.integers(1, 500), elements=floats))
    @settings(max_examples=30, deadline=None)
    def test_reconstruct_values_identity(self, values):
        weights = bfloat16.project(values)
        unique = uniquify(weights, bfloat16)
        assert np.array_equal(unique.reconstruct_values(), weights)
        assert unique.counts.sum() == weights.size

    @given(
        hnp.arrays(np.float32, st.integers(2, 300), elements=floats),
        st.integers(2, 8),
        st.floats(min_value=1e-6, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_attention_rows_are_distributions(self, values, k, temperature):
        centroids = np.linspace(-1, 1, k).astype(np.float32)
        table = attention_table(values, centroids, temperature)
        assert np.all(table >= 0)
        assert np.allclose(table.sum(axis=1), 1.0, atol=1e-5)


class TestPackingProperties:
    @given(
        st.integers(1, 8),
        st.integers(0, 2000),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, bits, count, seed):
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, 2**bits, size=count).astype(np.uint8)
        packed = pack_indices(indices, bits)
        assert packed.size == int(np.ceil(count * bits / 8))
        assert np.array_equal(unpack_indices(packed, bits, count), indices)


class TestEngineVsNumpy:
    @given(small_arrays, small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_numpy_when_broadcastable(self, a, b):
        try:
            expected = a + b
        except ValueError:
            return  # not broadcastable; engine raising too is acceptable
        try:
            out = (rt.tensor(a) + rt.tensor(b)).numpy()
        except ValueError:
            return
        assert np.allclose(out, expected, rtol=1e-5, atol=1e-5, equal_nan=True)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_view_roundtrip_preserves_values(self, a):
        t = rt.tensor(a)
        assert np.array_equal(t.view(-1).view(*a.shape).numpy(), a)

    @given(small_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, a):
        assert np.allclose(
            rt.tensor(a).sum().item(), a.sum(), rtol=1e-4, atol=1e-4
        )

    @given(
        hnp.arrays(np.float32, hnp.array_shapes(min_dims=2, max_dims=2, max_side=5),
                   elements=floats),
    )
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, a):
        t = rt.tensor(a)
        assert np.array_equal(t.T.T.numpy(), a)

    @given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=1, max_dims=2, max_side=6),
                      elements=st.floats(-5, 5, width=32)))
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_normalized(self, a):
        out = rt.tensor(a).softmax(dim=-1).numpy()
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-4)


class TestUnbroadcastProperties:
    @given(
        hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
        st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape, extra_dims):
        grad_shape = tuple([2] * extra_dims) + shape
        grad = np.ones(grad_shape, dtype=np.float32)
        out = unbroadcast(grad, shape)
        assert out.shape == shape
        assert np.all(out == 2**extra_dims)


class TestPipelineInvariance:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_offload_pipeline_never_changes_gradients(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((6, 6)).astype(np.float32)

        def grads(pipeline):
            x = rt.Tensor.from_numpy(values, device="gpu", requires_grad=True)
            scope = pipeline.step() if pipeline else _null()
            with scope:
                ((x @ x).softmax(dim=1) ** 2).sum().backward()
            return x.grad.numpy()

        plain = grads(None)
        piped = grads(
            SavedTensorPipeline(
                EDKMConfig(marshal=True, uniquify=False, shard=False, group=None)
            )
        )
        assert np.allclose(plain, piped, rtol=1e-6)


def _null():
    import contextlib

    return contextlib.nullcontext()
