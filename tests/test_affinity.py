"""Sticky worker-affinity tests (see ``repro/core/procpool.py``).

The contract under test: ``backend="process", affinity="sticky"`` pins
each layer to one worker deterministically, keeps worker-side step caches
and shm leases resident across sweeps, ships ``O(k)`` deltas instead of
full tasks once a layer is synced -- and stays *bit-identical* to the
serial backend (centroids, assignments, reconstruction errors, gradients,
and per-layer ``FastPathStats`` counters) through warm sweeps, pool
rebalances, worker crashes, stale-cache recoveries, and sweep errors.
"""

import dataclasses
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    AffinityMap,
    CompressorConfig,
    DKMConfig,
    LayerDelta,
    LayerTask,
    ModelCompressor,
    WorkerCacheRegistry,
)
from repro.core.compressor import SWEEP_OPS
from repro.core.procpool import StaleWorkerCache
from repro.tensor.dtype import bfloat16
from repro.tensor.serialization import export_tensor_shm
from repro.tensor.tensor import Tensor


class _Stack(nn.Module):
    def __init__(self, n_layers=4, in_f=32, out_f=24, seed=0):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(in_f, out_f, bias=False, rng=np.random.default_rng(seed + i)),
            )


def _compressor(backend, num_workers=2, n_layers=4, seed=0, **config_kwargs):
    stack = _Stack(n_layers=n_layers, seed=seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=3, iters=3),
        config=CompressorConfig(
            backend=backend, num_workers=num_workers, **config_kwargs
        ),
    )
    compressor.compress(stack)
    return compressor, stack


def _stats(compressor):
    return {
        name: dataclasses.asdict(wrapper.step_cache.stats)
        for name, wrapper in compressor.wrapped.items()
    }


def _assert_results_equal(reference, candidate):
    assert list(reference) == list(candidate)
    for name in reference:
        assert np.array_equal(reference[name].centroids, candidate[name].centroids), name
        assert np.array_equal(reference[name].assignments, candidate[name].assignments)
        assert reference[name].temperature == candidate[name].temperature
        assert (
            reference[name].reconstruction_error
            == candidate[name].reconstruction_error
        )


def _assert_all_unlinked(names):
    assert names
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestAffinityMap:
    def test_deterministic_across_builds(self):
        names = [f"block{i}.linear" for i in range(7)]
        assert AffinityMap.build(names, 3) == AffinityMap.build(names, 3)
        assert AffinityMap.build(names, 3).pins == AffinityMap.build(list(names), 3).pins

    def test_balanced_within_capacity(self):
        names = [f"layer{i}" for i in range(10)]
        for workers in (1, 2, 3, 4, 7):
            amap = AffinityMap.build(names, workers)
            loads = [len(amap.layers_for(slot)) for slot in range(workers)]
            assert sum(loads) == len(names)
            assert max(loads) <= -(-len(names) // workers)  # ceil capacity

    def test_layers_for_partitions_in_insertion_order(self):
        names = [f"layer{i}" for i in range(6)]
        amap = AffinityMap.build(names, 2)
        merged = sorted(
            (name for slot in range(2) for name in amap.layers_for(slot)),
            key=names.index,
        )
        assert merged == names
        for slot in range(2):
            pinned = amap.layers_for(slot)
            assert pinned == [n for n in names if n in set(pinned)]  # order kept

    def test_resize_is_the_only_rebalance_trigger(self):
        names = [f"layer{i}" for i in range(8)]
        assert AffinityMap.build(names, 2) == AffinityMap.build(names, 2)
        wide = AffinityMap.build(names, 4)
        assert wide.n_workers == 4
        assert {wide.pins[n] for n in names} <= set(range(4))


class TestWorkerCacheRegistry:
    """In-process exercises of the worker-side cache (no pool spawn)."""

    def _task(self, seed=0, warm=False, epoch=1, n=512):
        values = np.random.default_rng(seed).standard_normal(n).astype(np.float32)
        tensor = Tensor.from_numpy(values * 0.1, dtype=bfloat16)
        export = export_tensor_shm(tensor)
        task = LayerTask(
            name="layer0",
            handle=export.handle,
            dkm_config=DKMConfig(bits=3, iters=2),
            state=None,
            warm=warm,
            epoch=epoch,
        )
        return export, task

    def test_full_then_delta_reuses_resident_cache(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            first = registry.run(SWEEP_OPS["refine"], task, {})
            assert first.stats.uniquify_misses == 1
            with registry._lock:  # white-box peek (tsan-clean)
                lease = registry._entries["layer0"].lease
            delta = LayerDelta(
                name="layer0",
                version=task.handle.version,
                epoch=task.epoch,
                state=first.state,
                warm=True,
            )
            second = registry.run(SWEEP_OPS["refine"], delta, {})
            # Resident products: a real hit with zero recompute shipped as
            # a pure delta (first sweep's counters not double-counted).
            assert second.stats.uniquify_hits == 1
            assert second.stats.uniquify_misses == 0
            with registry._lock:
                assert registry._entries["layer0"].lease is lease  # pinned
            assert np.array_equal(first.state.centroids, second.state.centroids)
        finally:
            registry.close()
            export.close()

    def test_cold_delta_raises_stale(self):
        registry = WorkerCacheRegistry()
        delta = LayerDelta(name="ghost", version=0, epoch=1, state=None, warm=False)
        with pytest.raises(StaleWorkerCache):
            registry.run(SWEEP_OPS["refine"], delta, {})

    def test_epoch_and_version_mismatches_raise_stale(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            outcome = registry.run(SWEEP_OPS["refine"], task, {})
            bad_epoch = LayerDelta(
                name="layer0",
                version=task.handle.version,
                epoch=task.epoch + 1,
                state=outcome.state,
                warm=True,
            )
            with pytest.raises(StaleWorkerCache, match="epoch"):
                registry.run(SWEEP_OPS["refine"], bad_epoch, {})
            bad_version = LayerDelta(
                name="layer0",
                version=task.handle.version + 1,
                epoch=task.epoch,
                state=outcome.state,
                warm=True,
            )
            with pytest.raises(StaleWorkerCache, match="version"):
                registry.run(SWEEP_OPS["refine"], bad_version, {})
        finally:
            registry.close()
            export.close()

    def test_not_warm_delta_recomputes_like_serial_miss(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            outcome = registry.run(SWEEP_OPS["refine"], task, {})
            delta = LayerDelta(
                name="layer0",
                version=task.handle.version,
                epoch=task.epoch,
                state=outcome.state,
                warm=False,  # parent invalidated (release_step_caches)
            )
            second = registry.run(SWEEP_OPS["refine"], delta, {})
            assert second.stats.uniquify_misses == 1
            assert second.stats.uniquify_hits == 0
        finally:
            registry.close()
            export.close()

    def test_bytes_limit_evicts_to_phantom_without_counter_drift(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            registry.run(SWEEP_OPS["refine"], task, {}, bytes_limit=1)
            # Everything evicted down to a phantom entry...
            assert registry.resident_bytes() == 0
            with registry._lock:  # white-box peek (tsan-clean)
                entry = registry._entries["layer0"]
            delta = LayerDelta(
                name="layer0",
                version=task.handle.version,
                epoch=task.epoch,
                state=entry.clusterer.state,
                warm=True,
            )
            outcome = registry.run(SWEEP_OPS["refine"], delta, {}, bytes_limit=1)
            # ...so the next sweep still counts a (phantom) hit.
            assert outcome.stats.uniquify_hits == 1
            assert outcome.stats.uniquify_misses == 0
        finally:
            registry.close()
            export.close()

    def test_prune_releases_unretained_entries_and_leases(self):
        exports, tasks = [], []
        for i in range(3):
            values = np.random.default_rng(i).standard_normal(128).astype(np.float32)
            tensor = Tensor.from_numpy(values * 0.1, dtype=bfloat16)
            export = export_tensor_shm(tensor)
            exports.append(export)
            tasks.append(
                LayerTask(
                    name=f"layer{i}",
                    handle=export.handle,
                    dkm_config=DKMConfig(bits=3, iters=2),
                    state=None,
                    warm=False,
                    epoch=1,
                )
            )
        registry = WorkerCacheRegistry()
        try:
            for task in tasks:
                registry.run(SWEEP_OPS["refine"], task, {})
            assert len(registry) == 3
            registry.prune(("layer0", "layer2"))  # layer1 re-pinned away
            with registry._lock:  # white-box peek (tsan-clean)
                assert sorted(registry._entries) == ["layer0", "layer2"]
                assert len(registry._leases) == 2
            registry.prune(())  # slot emptied entirely
            assert len(registry) == 0
            with registry._lock:
                assert len(registry._leases) == 0
        finally:
            registry.close()
            for export in exports:
                export.close()

    def test_close_releases_leases(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        registry.run(SWEEP_OPS["refine"], task, {})
        registry.close()
        assert len(registry) == 0
        export.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=task.handle.shm_name)


class TestStickyEquivalence:
    def test_pinning_identical_across_engines(self):
        a, _ = _compressor("process")
        b, _ = _compressor("process")
        try:
            a.precluster()
            b.precluster()
            assert a._engine.affinity_map() == b._engine.affinity_map()
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("affinity", ["sticky", "chunked"])
    def test_bit_identical_to_serial_over_two_sweeps(self, affinity):
        serial, _ = _compressor("serial")
        process, _ = _compressor("process", affinity=affinity)
        try:
            for sweep in range(2):
                res_s = serial.precluster(compute_error=True)
                res_p = process.precluster(compute_error=True)
                _assert_results_equal(res_s, res_p)
                assert _stats(serial) == _stats(process), (affinity, sweep)
        finally:
            process.close()

    def test_training_grads_identical_after_sticky_sweeps(self):
        serial, stack_s = _compressor("serial", n_layers=2, seed=7)
        sticky, stack_p = _compressor("process", n_layers=2, seed=7)
        try:
            for _ in range(2):  # second sweep runs the delta path
                serial.precluster()
                sticky.precluster()
            x = np.random.default_rng(11).standard_normal((5, 32)).astype(np.float32)
            for stack in (stack_s, stack_p):
                stack.train()
                out = stack.layer0(Tensor.from_numpy(x, device="gpu"))
                (out * out).sum().backward()
            grad_s = stack_s.layer0.inner.weight.grad
            grad_p = stack_p.layer0.inner.weight.grad
            assert grad_s is not None and grad_p is not None
            assert np.array_equal(grad_s.numpy(), grad_p.numpy())
            assert _stats(serial) == _stats(sticky)
        finally:
            sticky.close()

    def test_warm_sweep_ships_only_deltas_and_fewer_bytes(self):
        sticky, _ = _compressor("process", affinity="sticky")
        chunked, _ = _compressor("process", affinity="chunked")
        try:
            for compressor in (sticky, chunked):
                compressor.precluster(compute_error=True)
                compressor.precluster(compute_error=True)
            t_sticky = sticky.transport_stats()
            t_chunked = chunked.transport_stats()
            n_layers = len(sticky.wrapped)
            assert t_sticky.last_sweep_full_tasks == 0
            assert t_sticky.last_sweep_delta_tasks == n_layers
            assert t_chunked.last_sweep_full_tasks == n_layers
            # The acceptance gate: strictly fewer pickled bytes per layer
            # on the warm sweep.
            assert (
                t_sticky.last_sweep_bytes / n_layers
                < t_chunked.last_sweep_bytes / n_layers
            )
        finally:
            sticky.close()
            chunked.close()

    def test_optimizer_write_demotes_layer_to_full_shipping(self):
        sticky, _ = _compressor("process", n_layers=2)
        try:
            sticky.precluster()
            sticky.precluster()
            assert sticky.transport_stats().last_sweep_full_tasks == 0
            name, wrapper = next(iter(sticky.wrapped.items()))
            wrapper.inner.weight.copy_(wrapper.inner.weight.numpy() * 0.5)
            sticky.precluster()
            transport = sticky.transport_stats()
            # Exactly the written layer re-ships full; the other stays delta.
            assert transport.last_sweep_full_tasks == 1
            assert transport.last_sweep_delta_tasks == 1
        finally:
            sticky.close()

    def test_worker_cache_limit_stays_bit_identical(self):
        serial, _ = _compressor("serial")
        limited, _ = _compressor("process", worker_cache_bytes_limit=1)
        try:
            for _ in range(2):
                res_s = serial.precluster(compute_error=True)
                res_p = limited.precluster(compute_error=True)
                _assert_results_equal(res_s, res_p)
            assert _stats(serial) == _stats(limited)
        finally:
            limited.close()


class TestStickyResilience:
    def _kill_one_worker(self, engine):
        """Hard-kill the first slot worker that has a live process."""
        for slot, pool in enumerate(engine._state["slots"]):
            processes = list((pool._processes or {}).values())
            if processes:
                processes[0].kill()
                processes[0].join()
                return slot
        raise AssertionError("no live slot worker to kill")

    def test_worker_crash_recovers_bit_identical_with_no_leaks(self):
        serial, _ = _compressor("serial")
        sticky, _ = _compressor("process")
        try:
            serial.precluster(compute_error=True)
            sticky.precluster(compute_error=True)
            self._kill_one_worker(sticky._engine)
            # The crashed slot's layers re-ship full on a respawned worker;
            # results and counters still match a serial two-sweep history.
            res_s = serial.precluster(compute_error=True)
            res_p = sticky.precluster(compute_error=True)
            _assert_results_equal(res_s, res_p)
            assert _stats(serial) == _stats(sticky)
            assert sticky.transport_stats().last_sweep_full_tasks > 0
            names = sticky._engine.active_shm_names()
            sticky.close()
            _assert_all_unlinked(names)
            assert sticky._engine.active_shm_names() == []
        finally:
            sticky.close()

    def test_stale_delta_recovery_reships_full(self):
        serial, _ = _compressor("serial", n_layers=2)
        sticky, _ = _compressor("process", n_layers=2)
        try:
            serial.precluster()
            sticky.precluster()
            engine = sticky._engine
            # Desynchronize the parent's records on purpose: the worker
            # defensively raises StaleWorkerCache and the slot re-ships full.
            for record in engine._sync.values():
                record.epoch += 7
            res_s = serial.precluster(compute_error=True)
            res_p = sticky.precluster(compute_error=True)
            _assert_results_equal(res_s, res_p)
            assert _stats(serial) == _stats(sticky)
        finally:
            sticky.close()

    def test_rebalance_on_pool_resize_stays_bit_identical(self):
        serial, _ = _compressor("serial", n_layers=4)
        sticky, _ = _compressor("process", n_layers=4, num_workers=2)
        try:
            serial.precluster(compute_error=True)
            sticky.precluster(compute_error=True)
            before = sticky._engine.affinity_map()
            sticky.config.num_workers = 3  # pool resize: the one rebalance
            res_s = serial.precluster(compute_error=True)
            res_p = sticky.precluster(compute_error=True)
            after = sticky._engine.affinity_map()
            assert after.n_workers == 3
            assert after != before
            # Rebalance dropped every sync record: all layers shipped full.
            assert sticky.transport_stats().last_sweep_full_tasks == 4
            _assert_results_equal(res_s, res_p)
            assert _stats(serial) == _stats(sticky)
        finally:
            sticky.close()

    def test_layer_set_change_at_same_width_stays_correct(self):
        """Re-pinning without a pool resize (layer set changed) must not
        poison results: moved layers re-ship full to their new owners and
        the old owners are told to drop them."""
        from repro.core import DKMClusterer
        from repro.core.procpool import ProcessLayerEngine

        def layer(i):
            values = np.random.default_rng(i).standard_normal(256).astype(np.float32)
            tensor = Tensor.from_numpy(values * 0.1, dtype=bfloat16, device="gpu")
            return (f"layer{i}", DKMClusterer(DKMConfig(bits=3, iters=2)), tensor)

        layers_a = [layer(0), layer(1), layer(2), layer(3)]
        layers_b = layers_a[:2] + [layer(4), layer(5)]  # two swapped out
        config = CompressorConfig(backend="process", num_workers=2)
        with ProcessLayerEngine(config) as engine:
            first = engine.map_layers("refine", layers_a)
            for name, clusterer, _ in layers_a:  # the compressor merge step
                clusterer.state = first[name].state
            outcomes = engine.map_layers("refine", layers_b)  # same width
            assert list(outcomes) == [name for name, _, _ in layers_b]
            # Serial reference over the same two-sweep history.
            for (name, clusterer, weights), reference_layer in zip(
                layers_b, [layer(0), layer(1), layer(4), layer(5)]
            ):
                ref_name, ref_clusterer, ref_weights = reference_layer
                ref_clusterer.refine(ref_weights)
                if name in ("layer0", "layer1"):
                    ref_clusterer.refine(ref_weights)  # second sweep
                assert np.array_equal(
                    outcomes[name].state.centroids, ref_clusterer.state.centroids
                ), name

    def test_reset_reexports_instead_of_reusing_stale_keys(self):
        """A sweep error must not leave stale (storage, version) exports
        or sync records behind: the next sweep re-exports every layer.

        A lost shm block no longer fails a sweep (the engine re-exports
        and re-ships, see ``test_faults.py``), so the error here is a
        genuine op failure -- a bad kwarg raising in the worker -- which
        is outside the recovery taxonomy and must reset the engine.
        """
        sticky, _ = _compressor("process", n_layers=2)
        serial, _ = _compressor("serial", n_layers=2)
        try:
            sticky.precluster()
            serial.precluster()
            engine = sticky._engine
            old_names = set(engine.active_shm_names())
            assert engine._sync  # layers synced after a clean sweep
            layers = [
                (name, wrapper.clusterer, wrapper.inner.weight)
                for name, wrapper in sticky.wrapped.items()
            ]
            with pytest.raises(TypeError):
                engine.map_layers("refine", layers, bogus_kwarg=True)
            # reset() ran: exports unlinked AND sync records forgotten.
            assert engine.active_shm_names() == []
            assert engine._sync == {}
            res_p = sticky.precluster(compute_error=True)
            res_s = serial.precluster(compute_error=True)
            new_names = set(engine.active_shm_names())
            assert new_names and new_names.isdisjoint(old_names)  # re-exported
            assert sticky.transport_stats().last_sweep_full_tasks == 2
            _assert_results_equal(res_s, res_p)
        finally:
            sticky.close()
