"""Tests for Tensor construction, metadata, views, and in-place mutation."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.tensor.tensor import contiguous_strides


class TestConstruction:
    def test_tensor_from_list(self):
        t = rt.tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype is rt.float32
        assert np.array_equal(t.numpy(), [[1.0, 2.0], [3.0, 4.0]])

    def test_float64_input_defaults_to_float32(self):
        t = rt.tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype is rt.float32

    def test_int_input_keeps_int64(self):
        t = rt.tensor(np.arange(3))
        assert t.dtype is rt.int64

    def test_zeros_ones_full(self):
        assert np.array_equal(rt.zeros(2, 3).numpy(), np.zeros((2, 3)))
        assert np.array_equal(rt.ones(4).numpy(), np.ones(4))
        assert np.array_equal(rt.full((2,), 7.0).numpy(), [7.0, 7.0])

    def test_arange(self):
        assert np.array_equal(rt.arange(5).numpy(), np.arange(5))
        assert np.array_equal(rt.arange(2, 8, 2).numpy(), [2, 4, 6])

    def test_rand_randn_shapes_and_determinism(self):
        rt.manual_seed(42)
        a = rt.randn(3, 4)
        rt.manual_seed(42)
        b = rt.randn(3, 4)
        assert a.shape == (3, 4)
        assert np.array_equal(a.numpy(), b.numpy())

    def test_randint_bounds(self):
        t = rt.randint(3, 9, (100,))
        values = t.numpy()
        assert values.min() >= 3 and values.max() < 9

    def test_device_placement(self):
        t = rt.zeros(2, device="gpu")
        assert t.device.name == "gpu"

    def test_bf16_tensor_values_on_grid(self):
        t = rt.tensor([1.0000001], dtype="bfloat16")
        bits = t.numpy().view(np.uint32)
        assert (bits & 0xFFFF).item() == 0


class TestMetadata:
    def test_contiguous_strides(self):
        assert contiguous_strides((2, 3, 4)) == (12, 4, 1)
        assert contiguous_strides(()) == ()

    def test_numel_ndim(self):
        t = rt.zeros(2, 3, 4)
        assert t.numel == 24
        assert t.ndim == 3

    def test_item_scalar(self):
        assert rt.tensor([3.5]).item() == 3.5

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            rt.zeros(2).item()

    def test_len(self):
        assert len(rt.zeros(5, 2)) == 5

    def test_numpy_is_a_copy(self):
        t = rt.zeros(3)
        out = t.numpy()
        out[0] = 9.0
        assert t.numpy()[0] == 0.0

    def test_nbytes_is_storage_bytes(self):
        t = rt.zeros(10, dtype="bfloat16")
        assert t.nbytes == 20


class TestViewSemantics:
    def test_view_shares_storage(self):
        t = rt.randn(4, 6)
        v = t.view(-1, 2)
        assert v.shares_storage_with(t)
        assert v.shape == (12, 2)

    def test_view_requires_contiguous(self):
        t = rt.randn(4, 6).transpose(0, 1)
        with pytest.raises(RuntimeError, match="contiguous"):
            t.view(24)

    def test_reshape_of_noncontiguous_copies(self):
        t = rt.randn(4, 6)
        r = t.transpose(0, 1).reshape(24)
        assert not r.shares_storage_with(t)
        assert np.array_equal(r.numpy(), t.numpy().T.reshape(24))

    def test_transpose_is_view(self):
        t = rt.randn(3, 5)
        tt = t.transpose(0, 1)
        assert tt.shares_storage_with(t)
        assert tt.shape == (5, 3)
        assert np.array_equal(tt.numpy(), t.numpy().T)
        assert not tt.is_contiguous()

    def test_permute(self):
        t = rt.randn(2, 3, 4)
        p = t.permute(2, 0, 1)
        assert p.shape == (4, 2, 3)
        assert np.array_equal(p.numpy(), np.transpose(t.numpy(), (2, 0, 1)))

    def test_expand_stride_zero(self):
        t = rt.randn(1, 4)
        e = t.expand(3, 4)
        assert e.shares_storage_with(t)
        assert np.array_equal(e.numpy(), np.broadcast_to(t.numpy(), (3, 4)))

    def test_squeeze_unsqueeze(self):
        t = rt.randn(2, 1, 3)
        assert t.squeeze(1).shape == (2, 3)
        assert t.squeeze().shape == (2, 3)
        assert t.unsqueeze(0).shape == (1, 2, 1, 3)
        assert t.unsqueeze(-1).shape == (2, 1, 3, 1)

    def test_flatten(self):
        assert rt.randn(2, 3).flatten().shape == (6,)

    def test_slicing_is_view(self):
        t = rt.randn(6, 8)
        s = t[2:5, ::2]
        assert s.shares_storage_with(t)
        assert np.array_equal(s.numpy(), t.numpy()[2:5, ::2])

    def test_integer_indexing(self):
        t = rt.randn(4, 5)
        row = t[1]
        assert row.shape == (5,)
        assert np.array_equal(row.numpy(), t.numpy()[1])

    def test_ellipsis_and_newaxis(self):
        t = rt.randn(2, 3, 4)
        assert t[..., 0].shape == (2, 3)
        assert t[None].shape == (1, 2, 3, 4)

    def test_negative_index(self):
        t = rt.randn(4)
        assert t[-1].item() == pytest.approx(t.numpy()[-1])

    def test_contiguous_materializes(self):
        t = rt.randn(3, 4).transpose(0, 1)
        c = t.contiguous()
        assert c.is_contiguous()
        assert not c.shares_storage_with(t)
        assert np.array_equal(c.numpy(), t.numpy())

    def test_contiguous_noop_when_contiguous(self):
        t = rt.randn(3, 4)
        assert t.contiguous() is t

    def test_T_property(self):
        t = rt.randn(2, 3)
        assert t.T.shape == (3, 2)
        with pytest.raises(ValueError):
            rt.randn(2, 3, 4).T


class TestMutation:
    def test_copy_preserves_storage_identity(self):
        t = rt.zeros(4)
        storage = t.storage
        t.copy_(np.ones(4, dtype=np.float32))
        assert t.storage is storage
        assert np.array_equal(t.numpy(), np.ones(4))

    def test_copy_from_tensor(self):
        t = rt.zeros(4)
        t.copy_(rt.ones(4))
        assert np.array_equal(t.numpy(), np.ones(4))

    def test_copy_projects_dtype(self):
        t = rt.zeros(1, dtype="bfloat16")
        t.copy_(np.array([1.0000001], dtype=np.float32))
        bits = t.numpy().view(np.uint32)
        assert (bits & 0xFFFF).item() == 0

    def test_fill_zero(self):
        t = rt.ones(4)
        t.zero_()
        assert np.array_equal(t.numpy(), np.zeros(4))

    def test_mutation_through_view_is_visible(self):
        t = rt.zeros(2, 2)
        v = t.view(4)
        v.fill_(5.0)
        assert np.array_equal(t.numpy(), np.full((2, 2), 5.0))


class TestMovement:
    def test_to_same_device_returns_self(self):
        t = rt.zeros(4, device="gpu")
        assert t.to("gpu") is t

    def test_to_new_device_new_storage(self):
        t = rt.zeros(4, device="gpu")
        moved = t.to("cpu")
        assert moved.device.name == "cpu"
        assert not moved.shares_storage_with(t)
        assert np.array_equal(moved.numpy(), t.numpy())

    def test_noncontiguous_to_device_materializes_logical_data(self):
        t = rt.randn(4, 6, device="gpu")
        moved = t.transpose(0, 1).to("cpu")
        assert np.array_equal(moved.numpy(), t.numpy().T)

    def test_cast_roundtrip(self):
        t = rt.randn(8)
        half = t.cast("float16")
        assert half.dtype is rt.float16
        assert np.allclose(half.float().numpy(), t.numpy(), atol=1e-2)

    def test_cast_same_dtype_returns_self(self):
        t = rt.randn(4)
        assert t.cast("float32") is t

    def test_dtype_helpers(self):
        t = rt.randn(4)
        assert t.half().dtype is rt.float16
        assert t.bfloat16().dtype is rt.bfloat16
        assert t.bfloat16().float().dtype is rt.float32
