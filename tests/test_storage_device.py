"""Tests for Storage byte accounting and Device interning."""

import gc

import numpy as np
import pytest

from repro.memory import profile_memory
from repro.tensor import bfloat16, device, float32
from repro.tensor.storage import Storage


class TestDeviceInterning:
    def test_same_name_same_object(self):
        assert device("gpu") is device("gpu")
        assert device("cpu:peer1") is device("cpu:peer1")

    def test_different_names_different_objects(self):
        assert device("gpu") is not device("cpu")

    def test_equality_and_hash(self):
        assert device("gpu") == device("gpu")
        assert hash(device("gpu")) == hash(device("gpu"))
        assert device("gpu") != device("cpu")

    def test_passthrough(self):
        gpu = device("gpu")
        assert device(gpu) is gpu

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            device("")
        with pytest.raises(ValueError):
            device(123)  # type: ignore[arg-type]


class TestStorageAccounting:
    def test_allocation_charges_logical_bytes(self):
        dev = device("test-alloc-1")
        before = dev.tracker.current_bytes
        storage = Storage(np.zeros(100, dtype=np.float32), float32, dev)
        assert dev.tracker.current_bytes - before == 400
        del storage

    def test_bf16_counts_two_bytes_per_element(self):
        dev = device("test-alloc-2")
        before = dev.tracker.current_bytes
        storage = Storage(np.zeros(100, dtype=np.float32), bfloat16, dev)
        assert dev.tracker.current_bytes - before == 200  # not 400
        assert storage.nbytes == 200

    def test_release_on_gc(self):
        dev = device("test-alloc-3")
        before = dev.tracker.current_bytes
        storage = Storage(np.zeros(64, dtype=np.float32), float32, dev)
        assert dev.tracker.current_bytes > before
        del storage
        gc.collect()
        assert dev.tracker.current_bytes == before

    def test_requires_1d_buffer(self):
        with pytest.raises(ValueError, match="1-D"):
            Storage(np.zeros((4, 4), dtype=np.float32), float32, device("cpu"))

    def test_requires_matching_physical_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            Storage(np.zeros(4, dtype=np.float64), float32, device("cpu"))

    def test_from_values_projects(self):
        storage = Storage.from_values(
            np.array([1.0000001], dtype=np.float32), bfloat16, device("cpu")
        )
        bits = storage.data.view(np.uint32)
        assert (bits & 0xFFFF).item() == 0

    def test_from_values_copies(self):
        source = np.arange(8, dtype=np.float32)
        storage = Storage.from_values(source, float32, device("cpu"))
        source[0] = 99.0
        assert storage.data[0] == 0.0

    def test_clone_to_moves_device(self):
        src_dev = device("test-clone-src")
        dst_dev = device("test-clone-dst")
        storage = Storage(np.arange(16, dtype=np.float32), float32, src_dev)
        clone = storage.clone_to(dst_dev)
        assert clone.device is dst_dev
        assert np.array_equal(clone.data, storage.data)
        assert clone.data is not storage.data

    def test_peak_tracks_maximum(self):
        dev = device("test-peak")
        with profile_memory([dev.tracker]) as prof:
            a = Storage(np.zeros(1000, dtype=np.float32), float32, dev)
            b = Storage(np.zeros(1000, dtype=np.float32), float32, dev)
            del a
            gc.collect()
            c = Storage(np.zeros(100, dtype=np.float32), float32, dev)
            del b, c
            gc.collect()
        assert prof.peak_delta(dev.name) == 8000
        assert prof.retained_delta(dev.name) == 0
