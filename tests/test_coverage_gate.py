"""Tests for the coverage tooling: ``tools.covlite`` (the local
settrace collector) and ``tools.check_coverage`` (the shrink-only
per-package ratchet that CI runs against pytest-cov's ``coverage.json``).
"""

import json
import os
import sys
import textwrap

import pytest

from tools import check_coverage, covlite


@pytest.fixture
def covlite_sandbox():
    """Isolate covlite's module globals so these tests can install /
    uninstall / clear freely without wiping the *session's* collection
    when the whole suite itself runs under ``REPRO_COV=1``."""
    saved_executed = covlite._executed
    saved_root = covlite._root
    was_active = sys.gettrace() is covlite._trace
    covlite._executed = {}
    try:
        yield
    finally:
        covlite.uninstall()
        covlite._executed = saved_executed
        covlite._root = saved_root
        if was_active and saved_root is not None:
            covlite.install(saved_root.rstrip(os.sep))


def _write_coverage(path, files):
    payload = {
        "files": {
            name: {
                "executed_lines": [],
                "missing_lines": [],
                "summary": {
                    "covered_lines": covered,
                    "num_statements": statements,
                    "percent_covered": (
                        100.0 * covered / statements if statements else 100.0
                    ),
                },
            }
            for name, (covered, statements) in files.items()
        }
    }
    path.write_text(json.dumps(payload))
    return path


def _write_baseline(path, floors):
    path.write_text(json.dumps({"version": 1, "floors": floors}))
    return path


class TestCovlite:
    def test_statement_lines_skip_non_executable(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text(
            textwrap.dedent(
                '''
                """Docstring, not a statement beyond line 2."""

                def f(x):
                    # comment: never executable
                    if x:
                        return 1
                    return 2
                '''
            )
        )
        lines = covlite.statement_lines(str(source))
        assert 5 not in lines  # the comment
        assert {6, 7, 8} <= lines  # if / both returns

    def test_trace_records_executed_lines(self, tmp_path, covlite_sandbox):
        source = tmp_path / "traced.py"
        source.write_text("def f(x):\n    if x:\n        return 1\n    return 2\n")
        namespace = {}
        exec(compile(source.read_text(), str(source), "exec"), namespace)
        covlite.install(str(tmp_path))
        try:
            namespace["f"](True)
        finally:
            covlite.uninstall()
        executed = covlite._executed.get(str(source), set())
        assert {2, 3} <= executed
        assert 4 not in executed  # the untaken branch

    def test_report_schema(self, tmp_path, covlite_sandbox):
        source_root = tmp_path / "src"
        source_root.mkdir()
        (source_root / "mod.py").write_text("x = 1\ny = 2\n")
        payload = covlite.report(
            str(source_root), str(tmp_path / "coverage.json"), str(tmp_path)
        )
        entry = payload["files"]["src/mod.py"]
        assert entry["summary"]["num_statements"] == 2
        assert entry["summary"]["covered_lines"] == 0
        assert payload["totals"]["num_statements"] == 2


class TestCheckCoverage:
    def test_aggregates_by_package_not_by_file(self, tmp_path):
        coverage_path = _write_coverage(
            tmp_path / "coverage.json",
            {
                "src/repro/distributed/big.py": (10, 100),
                "src/repro/distributed/small.py": (10, 10),
            },
        )
        with open(coverage_path) as fh:
            percents = check_coverage.package_percents(
                json.load(fh), ["src/repro/distributed"]
            )
        percent, covered, statements = percents["src/repro/distributed"]
        # 20/110, not the 55% a per-file average would claim.
        assert covered == 20 and statements == 110
        assert percent == pytest.approx(100.0 * 20 / 110)

    def test_gate_passes_at_floor_and_fails_below(self, tmp_path):
        coverage_path = _write_coverage(
            tmp_path / "coverage.json", {"src/pkg/mod.py": (90, 100)}
        )
        passing = _write_baseline(tmp_path / "ok.json", {"src/pkg": 90.0})
        failing = _write_baseline(tmp_path / "bad.json", {"src/pkg": 95.0})
        assert (
            check_coverage.main(
                ["--coverage", str(coverage_path), "--baseline", str(passing)]
            )
            == 0
        )
        assert (
            check_coverage.main(
                ["--coverage", str(coverage_path), "--baseline", str(failing)]
            )
            == 1
        )

    def test_unmeasured_package_fails(self, tmp_path):
        """A path typo must not silently pass at a vacuous 100%."""
        coverage_path = _write_coverage(
            tmp_path / "coverage.json", {"src/pkg/mod.py": (10, 10)}
        )
        baseline = _write_baseline(tmp_path / "base.json", {"src/ghost": 0.0})
        assert (
            check_coverage.main(
                ["--coverage", str(coverage_path), "--baseline", str(baseline)]
            )
            == 1
        )

    def test_update_only_raises_floors(self, tmp_path):
        coverage_path = _write_coverage(
            tmp_path / "coverage.json",
            {"src/up/mod.py": (95, 100), "src/down/mod.py": (30, 100)},
        )
        baseline = _write_baseline(
            tmp_path / "base.json", {"src/up": 80.0, "src/down": 40.0}
        )
        check_coverage.main(
            [
                "--coverage",
                str(coverage_path),
                "--baseline",
                str(baseline),
                "--update",
            ]
        )
        floors = json.loads(baseline.read_text())["floors"]
        assert floors["src/up"] == 95.0  # ratcheted up to measured
        assert floors["src/down"] == 40.0  # never lowered

    def test_rejects_malformed_baseline(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"entries": []}))
        with pytest.raises(SystemExit, match="not a version-1"):
            check_coverage.load_baseline(str(bad))
