"""Tests for the Table 3 harness API (quick subset; full run in benchmarks/)."""

import math

import pytest

from repro.bench.table3 import SUITE_ORDER, Table3Harness, run_table3


@pytest.fixture(scope="module")
def harness():
    """A deliberately small harness: enough training to beat chance fast."""
    return Table3Harness(
        seed=0, n_corpus=800, n_alpaca=300, n_items=8,
        corpus_epochs=1, alpaca_epochs=1,
    )


class TestHarness:
    def test_pretrained_is_cached(self, harness):
        first = harness.pretrained()
        assert harness.pretrained() is first

    def test_restore_rebuilds_fresh_model(self, harness):
        a = harness.restore()
        b = harness.restore()
        assert a is not b
        assert a.num_parameters() == b.num_parameters()

    def test_fp16_row(self, harness):
        row = harness.run_fp16()
        assert row.method == "LLaMA (fp16)"
        assert row.bits == 16
        assert row.size_gb == pytest.approx(12.55, abs=0.1)
        assert len(row.accuracies()) == len(SUITE_ORDER)
        assert 0 <= row.mean_accuracy <= 100

    def test_rtn_row_has_size(self, harness):
        row = harness.run_rtn(3)
        assert row.method == "RTN"
        assert not math.isnan(row.size_gb)
        assert row.size_gb < 3.0

    def test_edkm_row(self, harness):
        row = harness.run_edkm(3, epochs=1)
        assert row.method == "eDKM"
        assert row.size_gb == pytest.approx(2.43, abs=0.1)
        assert row.mean_accuracy > 30  # well above zero on 8-item suites

    def test_quick_run_table3(self, harness):
        rows = run_table3(harness, quick=True)
        assert [r.method for r in rows] == ["LLaMA (fp16)", "RTN", "eDKM"]
        # Sizes strictly ordered fp16 > RTN-3 ~ eDKM-3.
        assert rows[0].size_gb > rows[1].size_gb
        assert rows[0].size_gb > rows[2].size_gb

    def test_structure_does_not_leak_between_rows(self, harness):
        """An eDKM (structure-wrapping) row must not affect the next row."""
        harness.run_edkm(3, epochs=1)
        row = harness.run_fp16()
        # A wrapped model would have renamed parameters and failed restore;
        # reaching here with a sane accuracy is the regression check.
        assert row.mean_accuracy > 30
