"""Parallel compression-engine tests (ISSUE 2).

The thread-pool layer fan-out must be *bit-identical* to the serial sweep:
per-layer clustering shares no state across layers, every layer is handed
to exactly one worker, and results are gathered in layer insertion order.
That covers centroids, hard assignments, palettized artifacts, and the
per-layer step-cache hit/miss counters.

The chunked dense fallback must reproduce the monolithic dense composition
exactly (forward and gradient) while bounding its buffers at
``row_chunk x k``, and the monolithic path must refuse layers whose dense
buffers would exceed ``dense_saved_bytes_limit``.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    CompressorConfig,
    DKMConfig,
    ModelCompressor,
    parallel_layer_map,
)
from repro.core.dkm import DKMClusterer
from repro.tensor.dtype import bfloat16
from repro.tensor.tensor import Tensor


class _Stack(nn.Module):
    def __init__(self, n_layers=6, in_f=32, out_f=24, seed=0):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(in_f, out_f, bias=False, rng=np.random.default_rng(seed + i)),
            )


def _compressor(num_workers, n_layers=6, seed=0, bits=3, iters=3):
    stack = _Stack(n_layers=n_layers, seed=seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=bits, iters=iters),
        config=CompressorConfig(num_workers=num_workers),
    )
    compressor.compress(stack)
    return compressor, stack


class TestParallelLayerMap:
    def test_serial_and_parallel_preserve_input_order(self):
        items = [(f"t{i}", i) for i in range(17)]
        serial = parallel_layer_map(lambda x: x * x, items, num_workers=1)
        parallel = parallel_layer_map(lambda x: x * x, items, num_workers=4)
        assert list(serial) == [name for name, _ in items]
        assert serial == parallel

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("task 3 failed")
            return x

        with pytest.raises(RuntimeError, match="task 3"):
            parallel_layer_map(boom, [(f"t{i}", i) for i in range(8)], num_workers=4)

    def test_single_task_runs_on_caller_thread(self):
        import threading

        seen = []
        parallel_layer_map(
            lambda _: seen.append(threading.current_thread()),
            [("only", None)],
            num_workers=8,
        )
        assert seen == [threading.main_thread()]


class TestCompressorConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            CompressorConfig(num_workers=-1)

    def test_resolve_workers_caps_at_task_count(self):
        assert CompressorConfig(num_workers=16).resolve_workers(3) == 3
        assert CompressorConfig(num_workers=2).resolve_workers(9) == 2
        assert CompressorConfig(num_workers=1).resolve_workers(0) == 1

    def test_zero_means_cpu_count(self):
        import os

        expected = max(1, min(os.cpu_count() or 1, 64))
        assert CompressorConfig(num_workers=0).resolve_workers(64) == expected

    def test_legacy_keywords_still_apply(self):
        compressor = ModelCompressor(
            DKMConfig(bits=3), embedding_bits=6, skip_names=("layer0",)
        )
        assert compressor.embedding_bits == 6
        assert compressor.skip_names == ("layer0",)

    def test_config_object_wins(self):
        compressor = ModelCompressor(
            DKMConfig(bits=3),
            config=CompressorConfig(num_workers=3, skip_names=("layer1",)),
        )
        assert compressor.config.num_workers == 3
        assert compressor.skip_names == ("layer1",)

    def test_mixing_config_and_legacy_keywords_rejected(self):
        with pytest.raises(ValueError, match="CompressorConfig"):
            ModelCompressor(
                DKMConfig(bits=3), embedding_bits=4, config=CompressorConfig()
            )
        with pytest.raises(ValueError, match="CompressorConfig"):
            ModelCompressor(
                DKMConfig(bits=3), skip_names=("lm_head",), config=CompressorConfig()
            )


class TestParallelDeterminism:
    def test_precluster_bit_identical_to_serial(self):
        serial, _ = _compressor(num_workers=1)
        parallel, _ = _compressor(num_workers=4)
        res_s = serial.precluster(compute_error=True)
        res_p = parallel.precluster(compute_error=True)
        assert list(res_s) == list(res_p)  # layer insertion order
        for name in res_s:
            assert np.array_equal(res_s[name].centroids, res_p[name].centroids)
            assert res_s[name].centroids.dtype == res_p[name].centroids.dtype
            assert np.array_equal(res_s[name].assignments, res_p[name].assignments)
            assert res_s[name].temperature == res_p[name].temperature
            assert res_s[name].iterations_run == res_p[name].iterations_run
            assert res_s[name].reconstruction_error == res_p[name].reconstruction_error

    def test_step_cache_counters_match_serial(self):
        serial, _ = _compressor(num_workers=1)
        parallel, _ = _compressor(num_workers=4)
        serial.precluster()
        parallel.precluster()
        report_s = serial.fastpath_report().per_layer
        report_p = parallel.fastpath_report().per_layer
        assert list(report_s) == list(report_p)
        for name in report_s:
            s, p = report_s[name], report_p[name]
            assert (s.uniquify_hits, s.uniquify_misses) == (
                p.uniquify_hits,
                p.uniquify_misses,
            )
            assert (s.table_hits, s.table_misses) == (p.table_hits, p.table_misses)
            # One real uniquify per layer for the whole refine+assign sweep.
            assert p.uniquify_misses == 1

    def test_refine_all_matches_per_layer_refine(self):
        parallel, _ = _compressor(num_workers=4)
        reference, _ = _compressor(num_workers=1)
        states_p = parallel.refine_all()
        states_r = {
            name: wrapper.clusterer.refine(wrapper.inner.weight)
            for name, wrapper in reference.wrapped.items()
        }
        assert list(states_p) == list(states_r)
        for name in states_r:
            assert np.array_equal(states_p[name].centroids, states_r[name].centroids)

    def test_finalize_artifacts_bit_identical(self):
        serial, stack_s = _compressor(num_workers=1)
        parallel, stack_p = _compressor(num_workers=4)
        report_s = serial.finalize(stack_s)
        report_p = parallel.finalize(stack_p)
        assert list(report_s.palettized) == list(report_p.palettized)
        for name, pal_s in report_s.palettized.items():
            pal_p = report_p.palettized[name]
            assert np.array_equal(pal_s.lut, pal_p.lut)
            assert np.array_equal(pal_s.packed, pal_p.packed)
        assert report_s.total_bytes == report_p.total_bytes

    def test_parallel_is_repeatable(self):
        first, _ = _compressor(num_workers=4)
        second, _ = _compressor(num_workers=4)
        res_a = first.precluster()
        res_b = second.precluster()
        for name in res_a:
            assert np.array_equal(res_a[name].centroids, res_b[name].centroids)
            assert np.array_equal(res_a[name].assignments, res_b[name].assignments)


class TestChunkedDense:
    def _weights(self, n=4096, seed=0):
        values = np.random.default_rng(seed).standard_normal(n).astype(np.float32)
        return Tensor.from_numpy(values * 0.05, dtype=bfloat16, requires_grad=True)

    def test_chunked_forward_and_grad_bit_identical(self):
        w_mono, w_chunk = self._weights(), self._weights()
        mono = DKMClusterer(DKMConfig(bits=3, iters=3)).cluster_dense(w_mono)
        chunk = DKMClusterer(DKMConfig(bits=3, iters=3)).cluster_dense(
            w_chunk, row_chunk=700
        )
        assert np.array_equal(mono.numpy(), chunk.numpy())
        (mono * mono).sum().backward()
        (chunk * chunk).sum().backward()
        assert np.array_equal(w_mono.grad.numpy(), w_chunk.grad.numpy())

    def test_row_chunk_from_config(self):
        w_mono, w_chunk = self._weights(), self._weights()
        mono = DKMClusterer(DKMConfig(bits=3, iters=3)).cluster_dense(w_mono)
        chunk = DKMClusterer(
            DKMConfig(bits=3, iters=3, dense_row_chunk=512)
        ).cluster_dense(w_chunk)
        assert np.array_equal(mono.numpy(), chunk.numpy())

    def test_chunk_larger_than_tensor_is_monolithic(self):
        w_a, w_b = self._weights(n=300), self._weights(n=300)
        a = DKMClusterer(DKMConfig(bits=2, iters=2)).cluster_dense(w_a)
        b = DKMClusterer(DKMConfig(bits=2, iters=2)).cluster_dense(
            w_b, row_chunk=10_000
        )
        assert np.array_equal(a.numpy(), b.numpy())

    def test_monolithic_over_limit_raises(self):
        w = self._weights(n=2048)
        clusterer = DKMClusterer(DKMConfig(bits=4, iters=2, dense_saved_bytes_limit=1024))
        with pytest.raises(MemoryError, match="dense_row_chunk"):
            clusterer.cluster_dense(w)
        # The refusal happens before any refinement work.
        assert clusterer.state is None
        # The chunked fallback handles the same layer.
        out = clusterer.cluster_dense(w, row_chunk=256)
        assert out.shape == (2048,)

    def test_invalid_dense_config_rejected(self):
        with pytest.raises(ValueError):
            DKMConfig(dense_row_chunk=0)
        with pytest.raises(ValueError):
            DKMConfig(dense_saved_bytes_limit=0)

    def test_invalid_row_chunk_argument_rejected(self):
        w = self._weights(n=128)
        clusterer = DKMClusterer(DKMConfig(bits=2, iters=1))
        with pytest.raises(ValueError, match="row_chunk"):
            clusterer.cluster_dense(w, row_chunk=0)
        with pytest.raises(ValueError, match="row_chunk"):
            clusterer.cluster_dense(w, row_chunk=-4)
