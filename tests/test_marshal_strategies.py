"""Strategy-equivalence suite for the marshal search strategies (ISSUE 3).

For the same forward graph, ``fingerprint`` must dedup the identical set of
storages as the ``storage-id`` oracle, and every strategy's
``PipelineStats`` counters must reconcile:
``copies_made + copies_avoided == tensors_packed == hits + misses``.
"""

import numpy as np
import pytest

import repro.tensor as rt
from repro.core import EDKMConfig, SavedTensorPipeline
from repro.core.config import SEARCH_STRATEGIES


def _gpu_matrix(n=24, seed=0):
    values = np.random.default_rng(seed).standard_normal((n, n)).astype(np.float32)
    return rt.Tensor.from_numpy(values, device="gpu", requires_grad=True)


def _pipeline(strategy, **overrides):
    return SavedTensorPipeline(
        EDKMConfig(
            marshal=True,
            uniquify=False,
            shard=False,
            group=None,
            search_strategy=strategy,
            **overrides,
        ),
        record_events=True,
    )


def _run_step(pipeline, seed=0):
    """A forward graph with 0-hop, 1-hop, and sibling-view saved tensors."""
    x = _gpu_matrix(seed=seed)
    with pipeline.step():
        v = x.view(-1)
        w = x.transpose(0, 1)
        loss = (x * x).sum() + (v**2.0).sum() + (w @ x).sum()
        loss.backward()
    return pipeline


class TestStrategyEquivalence:
    def test_fingerprint_dedups_same_storages_as_oracle(self):
        oracle = _run_step(_pipeline("storage-id"))
        fingerprint = _run_step(_pipeline("fingerprint"))
        # Same workload -> same pack order; equal event streams mean the
        # two strategies deduped the identical set of storages.
        assert fingerprint.events == oracle.events
        assert fingerprint.stats.copies_made == oracle.stats.copies_made
        assert fingerprint.stats.copies_avoided == oracle.stats.copies_avoided
        assert fingerprint.stats.bytes_copied == oracle.stats.bytes_copied

    def test_fingerprint_has_hits_on_view_workload(self):
        pipeline = _run_step(_pipeline("fingerprint"))
        assert pipeline.stats.copies_avoided > 0

    @pytest.mark.parametrize("strategy", SEARCH_STRATEGIES)
    def test_counters_reconcile(self, strategy):
        stats = _run_step(_pipeline(strategy)).stats
        assert stats.tensors_packed > 0
        assert stats.copies_made + stats.copies_avoided == stats.tensors_packed
        assert stats.probes(strategy) == stats.tensors_packed
        assert stats.strategy_hits.get(strategy, 0) == stats.copies_avoided
        assert stats.strategy_misses.get(strategy, 0) == stats.copies_made

    def test_graph_probe_cost_recorded(self):
        stats = _run_step(_pipeline("graph")).stats
        assert stats.graph_nodes_visited > 0
        assert stats.fingerprint_bytes_hashed == 0

    def test_fingerprint_probe_cost_recorded(self):
        stats = _run_step(_pipeline("fingerprint")).stats
        assert stats.fingerprint_bytes_hashed > 0
        assert stats.graph_nodes_visited == 0

    def test_gradients_identical_across_strategies(self):
        grads = {}
        for strategy in SEARCH_STRATEGIES:
            x = _gpu_matrix(seed=7)
            with _pipeline(strategy).step():
                ((x @ x).softmax(dim=1) ** 2).sum().backward()
            grads[strategy] = x.grad.numpy()
        reference = grads["graph"]
        for strategy, grad in grads.items():
            assert np.array_equal(grad, reference), strategy

    def test_content_dedup_never_below_oracle(self):
        oracle = _run_step(_pipeline("storage-id"))
        content = _run_step(
            _pipeline("fingerprint", fingerprint_dedup_content=True)
        )
        assert content.stats.copies_avoided >= oracle.stats.copies_avoided


class TestBenchDriver:
    def test_quick_bench_asserts_hold(self):
        from repro.bench.marshal_strategies import run_marshal_strategies

        result = run_marshal_strategies(
            dim=32, n_layers=1, hidden_dim=64, seq_len=8, repeats=1
        )
        assert result.fingerprint_matches_oracle
        assert result.all_reconcile
        rows = {row.strategy: row for row in result.rows}
        assert set(rows) == set(SEARCH_STRATEGIES) | {"fingerprint+content"}
        assert rows["fingerprint"].copies_made == rows["storage-id"].copies_made
        assert (
            rows["fingerprint+content"].copies_avoided
            >= rows["storage-id"].copies_avoided
        )
        # Probe cost lands in each strategy's own currency.
        assert rows["graph"].probe_cost > 0
        assert rows["storage-id"].probe_cost == 0
        assert rows["fingerprint"].probe_cost > 0
