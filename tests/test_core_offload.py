"""Tests for the saved-tensor offload pipeline (baseline, M, S)."""

import numpy as np

import repro.tensor as rt
from repro.core import DKMConfig, EDKMConfig, SavedTensorPipeline
from repro.core.dkm import DKMClusterer
from repro.core.edkm import edkm_cluster
from repro.distributed import LearnerGroup
from repro.memory import global_ledger, profile_memory


def _loss(x):
    return ((x @ x).softmax(dim=1) ** 2).sum()


def _gpu_matrix(n=24, seed=0, requires_grad=True):
    values = np.random.default_rng(seed).standard_normal((n, n)).astype(np.float32)
    return rt.Tensor.from_numpy(values, device="gpu", requires_grad=requires_grad)


class TestCorrectness:
    def test_gradients_unchanged_by_offload(self):
        """The pipeline must be semantically invisible."""
        x_plain = _gpu_matrix()
        _loss(x_plain).backward()

        x_piped = _gpu_matrix()
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        with pipeline.step():
            _loss(x_piped).backward()
        assert np.allclose(x_plain.grad.numpy(), x_piped.grad.numpy(), rtol=1e-6)

    def test_gradients_unchanged_by_marshaling(self):
        x_plain = _gpu_matrix()
        _loss(x_plain).backward()
        x_piped = _gpu_matrix()
        pipeline = SavedTensorPipeline(
            EDKMConfig(marshal=True, uniquify=False, shard=False, group=None)
        )
        with pipeline.step():
            _loss(x_piped).backward()
        assert np.allclose(x_plain.grad.numpy(), x_piped.grad.numpy(), rtol=1e-6)

    def test_gradients_unchanged_by_sharding(self):
        x_plain = _gpu_matrix()
        _loss(x_plain).backward()
        x_piped = _gpu_matrix()
        pipeline = SavedTensorPipeline(
            EDKMConfig(
                marshal=True,
                uniquify=False,
                shard=True,
                group=LearnerGroup(4),
                shard_min_bytes=64,
            )
        )
        with pipeline.step():
            _loss(x_piped).backward()
        assert np.allclose(x_plain.grad.numpy(), x_piped.grad.numpy(), rtol=1e-6)

    def test_gradients_unchanged_full_edkm_on_dkm_layer(self):
        values = (np.random.default_rng(1).standard_normal(600) * 0.05).astype(
            np.float32
        )

        def run(pipeline):
            w = rt.Tensor.from_numpy(
                values, dtype="bfloat16", device="gpu", requires_grad=True
            )
            clusterer = DKMClusterer(DKMConfig(bits=3, iters=3))
            if pipeline is None:
                (edkm_cluster(w, clusterer) ** 2).sum().backward()
            else:
                with pipeline.step():
                    (edkm_cluster(w, clusterer) ** 2).sum().backward()
            return w.grad.numpy()

        plain = run(None)
        full = run(
            SavedTensorPipeline(
                EDKMConfig(group=LearnerGroup(8), shard_min_bytes=128)
            )
        )
        assert np.allclose(plain, full, rtol=1e-5, atol=1e-8)


class TestOffloadBehavior:
    def test_disabled_pipeline_is_noop(self):
        pipeline = SavedTensorPipeline(
            EDKMConfig(
                offload=False, marshal=False, uniquify=False, shard=False, group=None
            )
        )
        cpu = rt.CPU
        with profile_memory([cpu.tracker]) as prof:
            with pipeline.step():
                _loss(_gpu_matrix()).backward()
        assert pipeline.stats.tensors_packed == 0
        assert prof.peak_delta("cpu") == 0

    def test_cpu_tensors_pass_through(self):
        x = rt.tensor(
            np.random.default_rng(0).standard_normal((8, 8)).astype(np.float32),
            requires_grad=True,
        )  # cpu tensor
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        with pipeline.step():
            _loss(x).backward()
        assert pipeline.stats.copies_made == 0

    def test_min_offload_bytes_threshold(self):
        pipeline = SavedTensorPipeline(
            EDKMConfig.baseline_offload(min_offload_bytes=10_000_000)
        )
        with pipeline.step():
            _loss(_gpu_matrix()).backward()
        assert pipeline.stats.copies_made == 0

    def test_offload_frees_count_on_cpu_and_records_traffic(self):
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        cpu = rt.CPU
        with profile_memory([cpu.tracker], global_ledger()) as prof:
            with pipeline.step():
                _loss(_gpu_matrix()).backward()
        assert prof.traffic("gpu", "cpu") > 0
        assert prof.traffic("cpu", "gpu") > 0  # restored for backward
        assert pipeline.stats.copies_made > 0

    def test_marshaling_reduces_copies_and_memory(self):
        def run(marshal):
            pipeline = SavedTensorPipeline(
                EDKMConfig(marshal=marshal, uniquify=False, shard=False, group=None)
            )
            cpu = rt.CPU
            with profile_memory([cpu.tracker]) as prof:
                with pipeline.step():
                    _loss(_gpu_matrix()).backward()
            return prof.peak_delta("cpu"), pipeline.stats

        base_peak, base_stats = run(False)
        marshal_peak, marshal_stats = run(True)
        assert marshal_stats.copies_avoided > 0
        assert marshal_peak < base_peak
        assert base_stats.copies_avoided == 0

    def test_sharding_distributes_bytes(self):
        group = LearnerGroup(4)
        pipeline = SavedTensorPipeline(
            EDKMConfig(
                marshal=False,
                uniquify=False,
                shard=True,
                group=group,
                shard_min_bytes=64,
            )
        )
        peer = group.devices[1]
        cpu = rt.CPU
        with profile_memory([cpu.tracker, peer.tracker]) as prof:
            with pipeline.step():
                _loss(_gpu_matrix()).backward()
        assert pipeline.stats.tensors_sharded > 0
        assert prof.peak_delta(peer.name) > 0
        # Learner 0 holds roughly 1/4 of what a whole copy would be.
        assert prof.peak_delta("cpu") < prof.peak_delta(peer.name) * 4

    def test_shard_min_bytes_respected(self):
        group = LearnerGroup(4)
        pipeline = SavedTensorPipeline(
            EDKMConfig(
                marshal=False,
                uniquify=False,
                shard=True,
                group=group,
                shard_min_bytes=10_000_000,
            )
        )
        with pipeline.step():
            _loss(_gpu_matrix()).backward()
        assert pipeline.stats.tensors_sharded == 0
        assert pipeline.stats.copies_made > 0

    def test_registry_cleared_between_steps(self):
        pipeline = SavedTensorPipeline(
            EDKMConfig(marshal=True, uniquify=False, shard=False, group=None)
        )
        with pipeline.step():
            _loss(_gpu_matrix()).backward()
        assert len(pipeline.registry) == 0

    def test_stats_accumulate_across_steps(self):
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        for _ in range(2):
            with pipeline.step():
                _loss(_gpu_matrix()).backward()
        assert pipeline.stats.copies_made >= 4

    def test_hops_histogram_populated(self):
        pipeline = SavedTensorPipeline(
            EDKMConfig(marshal=True, uniquify=False, shard=False, group=None)
        )
        x = _gpu_matrix()
        with pipeline.step():
            # x saved twice by Mul (0 hops) and its view saved via Pow (1 hop).
            v = x.view(-1)
            ((x * x).sum() + (v**2.0).sum()).backward()
        assert pipeline.stats.hops_histogram.get(0, 0) >= 1
        assert pipeline.stats.hops_histogram.get(1, 0) >= 1


class TestUnpackCaching:
    def test_multiple_refs_share_one_restore_when_alive(self):
        """Two payloads referencing one entry reuse the same GPU copy if the
        first unpacked tensor is still alive."""
        pipeline = SavedTensorPipeline(
            EDKMConfig(marshal=True, uniquify=False, shard=False, group=None)
        )
        x = _gpu_matrix(8)
        with pipeline.step():
            y = (x * x).sum()  # Mul saves x twice -> one entry, two payloads
            node = y.grad_fn
            # Find the mul node's context through the graph.
            mul_ctx = node.edges[0][1].ctx
            saved = mul_ctx.saved_tensors  # unpack both payloads now
            assert saved[0].shares_storage_with(saved[1])
            mul_ctx.release_saved()
