"""Serving subsystem tests: queue, palette kernels, batching, server, facade.

The load-bearing guarantees under test:

- batched generation is *bit-identical* to one-at-a-time generation
  (length-bucketed, never padded);
- the palette eval path produces the same tokens as dense
  reconstruction, sequentially and under concurrent multi-client load;
- ``ClusteredLinear``'s eval caches key on the weight's storage version,
  so an in-place weight update in eval mode is never served stale;
- admission control bounds the queue and deadlines reject late work;
- every serving byte flows through the traffic ledger under ``serve:``
  tags.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
import repro.nn as nn
import repro.tensor as rt
from repro.core import (
    CompressorConfig,
    DKMConfig,
    FaultPlan,
    ModelCompressor,
    get_default_compressor_config,
    get_default_dkm_config,
)
from repro.core.compressor import ClusteredLinear
from repro.llm import MICRO, build_model, generate, generate_batch
from repro.llm.generate import batched_last_logits
from repro.memory.traffic import TrafficLedger
from repro.tensor.autograd import no_grad
from repro.serving import (
    AdmissionError,
    DeadlineExceeded,
    PaletteLayout,
    PaletteServer,
    RequestQueue,
    ServerClosed,
    ServerRequest,
    ServingConfig,
    TileCache,
    get_default_serving_config,
    palette_matmul,
    percentile,
    request_tag,
)

MAX_NEW = 6


def _request(deadline=None, now=0.0, max_new_tokens=4):
    return ServerRequest("p", max_new_tokens, deadline=deadline, now=now)


class TestRequestQueue:
    def test_admission_bound(self):
        queue = RequestQueue(max_depth=2)
        queue.submit(_request())
        queue.submit(_request())
        with pytest.raises(AdmissionError):
            queue.submit(_request())
        assert queue.rejected_full == 1
        assert len(queue) == 2

    def test_take_skips_expired_without_consuming_slots(self):
        queue = RequestQueue(max_depth=8)
        late = _request(deadline=5.0, now=0.0)
        live = _request(deadline=None, now=0.0)
        queue.submit(late)
        queue.submit(live)
        admitted, expired = queue.take(limit=1, now=10.0)
        assert admitted == [live]
        assert expired == [late]
        assert late.done and not late.ok
        with pytest.raises(DeadlineExceeded):
            late.result(timeout=0)

    def test_drain_fails_pending(self):
        queue = RequestQueue(max_depth=4)
        request = queue.submit(_request())
        drained = queue.drain(ServerClosed("bye"))
        assert drained == [request]
        assert len(queue) == 0
        with pytest.raises(ServerClosed):
            request.result(timeout=0)

    def test_result_timeout_and_completion(self):
        request = _request()
        with pytest.raises(TimeoutError):
            request.result(timeout=0.01)
        request.complete("out", now=3.0)
        assert request.ok and request.done
        assert request.result(timeout=0) == "out"
        assert request.latency_s == 3.0

    def test_queue_wait_requires_scheduling(self):
        request = _request(now=1.0)
        assert request.queue_wait_s is None
        request.scheduled_at = 1.5
        assert request.queue_wait_s == 0.5

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([7.0], 50) == 7.0


class TestPaletteKernel:
    def _layout(self, out=8, in_f=16, k=4, seed=0):
        rng = np.random.default_rng(seed)
        lut = rng.standard_normal(k).astype(np.float32)
        indices = rng.integers(0, k, size=(out, in_f))
        return lut, indices, PaletteLayout.build(lut, indices)

    def test_dequantize_rows_exact(self):
        lut, indices, layout = self._layout()
        np.testing.assert_array_equal(
            layout.dequantize_rows(2, 6), lut[indices[2:6]]
        )

    def test_palette_matmul_matches_dense(self):
        lut, indices, layout = self._layout(out=12, in_f=32, k=8)
        x = np.random.default_rng(1).standard_normal((5, 32)).astype(np.float32)
        dense = x @ lut[indices].T
        np.testing.assert_allclose(palette_matmul(x, layout), dense, atol=1e-5)
        np.testing.assert_allclose(
            palette_matmul(x, layout, row_start=3, row_end=9),
            dense[:, 3:9],
            atol=1e-5,
        )

    @pytest.mark.parametrize("dtype", ["float16", "bfloat16", "float32"])
    def test_palette_matmul_across_lut_dtypes(self, dtype):
        # The lut is projected to the serving dtype before layout build;
        # the kernel must agree with dense reconstruction of that same
        # projected lut for every weight dtype the models use.
        rng = np.random.default_rng(2)
        raw = rng.standard_normal(8)
        if dtype == "bfloat16":
            lut = rt.Tensor.from_numpy(raw, dtype=rt.bfloat16)._compute()
        else:
            lut = raw.astype(np.float16).astype(np.float32) if dtype == "float16" else raw.astype(np.float32)
        lut = np.asarray(lut, dtype=np.float32)
        indices = rng.integers(0, 8, size=(10, 24))
        layout = PaletteLayout.build(lut, indices)
        x = rng.standard_normal((3, 24)).astype(np.float32)
        np.testing.assert_allclose(
            palette_matmul(x, layout), x @ lut[indices].T, atol=1e-5
        )

    def test_layout_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            PaletteLayout.build(np.zeros(4, np.float32), np.zeros(8, np.int64))
        with pytest.raises(ValueError, match="out of range"):
            PaletteLayout.build(
                np.zeros(4, np.float32), np.full((2, 3), 4, np.int64)
            )

    def test_packed_artifact_smaller_than_fp16(self):
        _, _, layout = self._layout(out=64, in_f=64, k=16)
        assert layout.packed_nbytes < 2 * 64 * 64


class TestTileCache:
    def _tile(self, fill, rows=2, cols=4):
        return np.full((rows, cols), fill, dtype=np.float32)  # 32 bytes

    def test_lru_eviction_under_budget(self):
        cache = TileCache(bytes_limit=64)  # room for two 32-byte tiles
        cache.put(("a", 0, 0), self._tile(0.0))
        cache.put(("a", 0, 1), self._tile(1.0))
        assert cache.get(("a", 0, 0)) is not None  # 0 is now most recent
        cache.put(("a", 0, 2), self._tile(2.0))  # evicts 1, the LRU
        assert cache.get(("a", 0, 1)) is None
        assert cache.get(("a", 0, 0)) is not None
        assert cache.resident_bytes() == 64
        assert cache.stats.evictions == 1

    def test_oversize_tile_refused(self):
        cache = TileCache(bytes_limit=16)
        cache.put(("a", 0, 0), self._tile(0.0))  # 32 > 16
        assert cache.get(("a", 0, 0)) is None
        assert cache.resident_bytes() == 0

    def test_unlimited_budget(self):
        cache = TileCache(bytes_limit=0)
        for i in range(10):
            cache.put(("a", 0, i), self._tile(float(i)))
        assert cache.resident_bytes() == 320
        assert cache.stats.evictions == 0

    def test_invalidate_prefix(self):
        cache = TileCache()
        cache.put(("layer0", 7, 0), self._tile(0.0))
        cache.put(("layer0", 8, 0), self._tile(1.0))
        cache.put(("layer1", 7, 0), self._tile(2.0))
        cache.invalidate_prefix(("layer0", 7))
        assert cache.get(("layer0", 7, 0)) is None
        assert cache.get(("layer0", 8, 0)) is not None
        assert cache.get(("layer1", 7, 0)) is not None


@pytest.fixture(scope="module")
def plain_model(tokenizer):
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
    model.to(rt.GPU)
    model.eval()
    return model


@pytest.fixture(scope="module")
def served_model(tokenizer, trained_state):
    """A trained, compressed MICRO model shared by the server tests.

    Module-scoped: compression clusters every layer once.  Tests must not
    mutate weights or module structure (``PaletteServer.close`` restores
    the dense eval path, so serving itself is safe).
    """
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
    model.to(rt.GPU)
    for name, param in model.state_dict().items():
        param.copy_(trained_state[name])
    ModelCompressor(DKMConfig(bits=4)).compress(model)
    model.eval()
    return model


PROMPTS = [
    "alice lives in",
    "the capital of",
    "bob",
    "carol works as a",
    "where does alice",
    "the",
]


class TestBatchedGeneration:
    def test_batch_matches_singles_greedy(self, plain_model, tokenizer):
        singles = [
            generate(plain_model, tokenizer, p, max_new_tokens=MAX_NEW)
            for p in PROMPTS
        ]
        batch = generate_batch(
            plain_model, tokenizer, PROMPTS, max_new_tokens=MAX_NEW
        )
        assert batch == singles

    def test_batch_matches_singles_with_temperature(self, plain_model, tokenizer):
        singles = [
            generate(
                plain_model,
                tokenizer,
                p,
                max_new_tokens=MAX_NEW,
                temperature=0.8,
                rng=np.random.default_rng(100 + i),
            )
            for i, p in enumerate(PROMPTS[:3])
        ]
        batch = generate_batch(
            plain_model,
            tokenizer,
            PROMPTS[:3],
            max_new_tokens=MAX_NEW,
            temperature=0.8,
            rngs=[np.random.default_rng(100 + i) for i in range(3)],
        )
        assert batch == singles

    def test_window_truncation_matches_single(self, plain_model, tokenizer):
        long_prompt = " ".join(["alice"] * (plain_model.max_seq_len + 5))
        single = generate(plain_model, tokenizer, long_prompt, max_new_tokens=3)
        batch = generate_batch(
            plain_model, tokenizer, [long_prompt, "bob"], max_new_tokens=3
        )
        assert batch[0] == single

    def test_batched_last_logits_matches_per_row(self, plain_model, tokenizer):
        windows = [
            tokenizer.encode(p, bos=True) for p in ("alice lives", "the", "bob is")
        ]
        batched = batched_last_logits(plain_model, windows)
        for window, got in zip(windows, batched):
            tokens = rt.Tensor.from_numpy(
                np.asarray([window], dtype=np.int64), device=rt.GPU
            )
            expected = plain_model(tokens)._compute()[0, len(window) - 1]
            np.testing.assert_array_equal(got, expected)

    def test_empty_window_raises(self, plain_model):
        with pytest.raises(ValueError):
            batched_last_logits(plain_model, [[]])


class TestConfigRoundTrips:
    def test_serving_round_trip(self):
        config = ServingConfig(max_batch_size=3, eval_path="dense")
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_serving_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ServingConfig keys"):
            ServingConfig.from_dict({"max_batch_sz": 3})

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_batch_size": 0},
            {"max_queue_depth": 0},
            {"eval_path": "sparse"},
            {"tile_cache_bytes_limit": -1},
            {"temperature": -0.1},
            {"default_deadline_s": 0.0},
        ],
    )
    def test_serving_validation(self, bad):
        with pytest.raises(ValueError):
            get_default_serving_config(**bad)

    def test_default_constructors_apply_overrides(self):
        assert get_default_serving_config(max_batch_size=16).max_batch_size == 16
        assert get_default_dkm_config(bits=2).bits == 2
        assert get_default_compressor_config(backend="serial").backend == "serial"

    def test_dkm_round_trip_includes_dtype(self):
        config = get_default_dkm_config(bits=2, weight_dtype=rt.bfloat16)
        payload = config.to_dict()
        assert payload["weight_dtype"] == "bfloat16"
        assert DKMConfig.from_dict(payload) == config
        with pytest.raises(ValueError, match="unknown"):
            DKMConfig.from_dict({"bitz": 3})

    def test_compressor_round_trip(self):
        config = get_default_compressor_config(backend="serial", skip_names=("lm_head",))
        rebuilt = CompressorConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_armed_fault_plan_refuses_serialization(self):
        config = CompressorConfig(fault_plan=FaultPlan())
        with pytest.raises(ValueError, match="fault_plan"):
            config.to_dict()


class TestHardWeightVersioning:
    def _wrapped(self, seed=0):
        layer = nn.Linear(16, 12, bias=True, rng=np.random.default_rng(seed))
        layer.to("gpu")
        wrapped = ClusteredLinear(layer, DKMConfig(bits=3))
        wrapped.eval()
        return wrapped

    def _x(self):
        return rt.Tensor.from_numpy(
            np.random.default_rng(1).standard_normal((4, 16)).astype(np.float32),
            device="gpu",
        )

    def test_eval_output_tracks_inplace_weight_update(self):
        # Regression: the eval-mode hard-weight cache used to be cleared
        # only by train(), so copy_() in eval mode served stale weights.
        wrapped = self._wrapped()
        x = self._x()
        before = wrapped(x).numpy().copy()
        wrapped.inner.weight.copy_(
            np.random.default_rng(9)
            .standard_normal((12, 16))
            .astype(np.float32)
        )
        after = wrapped(x).numpy()
        assert not np.allclose(before, after)

    def test_hard_weight_cache_keys_on_storage_version(self):
        wrapped = self._wrapped()
        first = wrapped._hard_weight()
        assert wrapped._hard_weight() is first  # unchanged weight: reused
        wrapped.inner.weight.copy_(wrapped.inner.weight.numpy() * 1.5)
        assert wrapped._hard_weight() is not first

    def test_palette_path_tracks_weight_update(self):
        # The palette path only runs for detached (no_grad) eval forwards.
        wrapped = self._wrapped()
        wrapped.enable_palette_eval(name="layer", cache=TileCache())
        x = self._x()
        with no_grad():
            before = wrapped(x).numpy().copy()
            exec_before = wrapped.palette_exec
            assert exec_before is not None
            wrapped.inner.weight.copy_(
                np.random.default_rng(9)
                .standard_normal((12, 16))
                .astype(np.float32)
            )
            after = wrapped(x).numpy()
        assert wrapped.palette_exec is not exec_before
        assert not np.allclose(before, after)
        wrapped.disable_palette_eval()
        assert wrapped.eval_path == "dense"

    def test_palette_matches_dense_forward(self):
        wrapped = self._wrapped()
        x = self._x()
        with no_grad():
            dense = wrapped(x).numpy().copy()
            wrapped.enable_palette_eval(name="layer", cache=TileCache())
            palette = wrapped(x).numpy()
        wrapped.disable_palette_eval()
        np.testing.assert_allclose(palette, dense, atol=1e-4)

    def test_grad_enabled_forward_keeps_dense_path(self):
        wrapped = self._wrapped()
        wrapped.enable_palette_eval(name="layer", cache=TileCache())
        wrapped(self._x())  # grad enabled: palette path must not engage
        assert wrapped.palette_exec is None
        wrapped.disable_palette_eval()


class TestPaletteServer:
    def _offline(self, model, tokenizer):
        return [
            generate(model, tokenizer, p, max_new_tokens=MAX_NEW) for p in PROMPTS
        ]

    def test_sequential_matches_offline_dense(self, served_model, tokenizer):
        offline = self._offline(served_model, tokenizer)
        config = ServingConfig(max_batch_size=4)
        with PaletteServer(served_model, tokenizer, config=config) as server:
            got = [server.generate(p, max_new_tokens=MAX_NEW) for p in PROMPTS]
        assert got == offline
        assert all(
            module.eval_path == "dense"
            for _, module in served_model.named_modules()
            if isinstance(module, ClusteredLinear)
        )

    def test_concurrent_matches_offline(self, served_model, tokenizer):
        offline = self._offline(served_model, tokenizer)
        results: list[str | None] = [None] * len(PROMPTS)
        config = ServingConfig(max_batch_size=4)
        with PaletteServer(served_model, tokenizer, config=config) as server:

            def client(indices):
                for i in indices:
                    results[i] = server.generate(
                        PROMPTS[i], max_new_tokens=MAX_NEW, timeout=120.0
                    )

            threads = [
                threading.Thread(target=client, args=([i, i + 3],))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == offline

    def test_tile_budget_eviction_preserves_tokens(self, served_model, tokenizer):
        offline = self._offline(served_model, tokenizer)
        config = ServingConfig(max_batch_size=4, tile_cache_bytes_limit=1 << 14)
        with PaletteServer(served_model, tokenizer, config=config) as server:
            got = [server.generate(p, max_new_tokens=MAX_NEW) for p in PROMPTS]
            stats = server.tile_cache.stats
            assert stats.evictions > 0  # the budget actually binds
        assert got == offline

    def test_stats_and_ledger_accounting(self, served_model, tokenizer):
        ledger = TrafficLedger()
        config = ServingConfig(max_batch_size=4)
        server = PaletteServer(served_model, tokenizer, config=config, ledger=ledger)
        with server:
            requests = [server.submit(p, max_new_tokens=MAX_NEW) for p in PROMPTS]
            for request in requests:
                request.result(timeout=120.0)
            report = server.stats()
        assert report.submitted == len(PROMPTS)
        assert report.completed == len(PROMPTS)
        assert report.decode_steps > 0
        assert report.mean_batch_occupancy > 0
        assert report.tokens_generated == sum(r.tokens_generated for r in requests)
        assert report.weight_bytes_read > 0
        assert report.activation_bytes > 0
        per_request = ledger.by_tag("serve:req")
        assert set(per_request) == {request_tag(r.id) for r in requests}
        assert all(nbytes > 0 for nbytes in per_request.values())

    def test_admission_burst_is_shed_and_accounted(self, served_model, tokenizer):
        config = ServingConfig(
            max_batch_size=1, max_queue_depth=1, poll_interval_s=0.001
        )
        with PaletteServer(served_model, tokenizer, config=config) as server:
            accepted, rejected = [], 0
            for _ in range(8):
                try:
                    accepted.append(server.submit(PROMPTS[0], max_new_tokens=3))
                except AdmissionError:
                    rejected += 1
            for request in accepted:
                request.result(timeout=120.0)
            report = server.stats()
        assert rejected > 0
        assert rejected + len(accepted) == 8
        assert report.rejected_admission == rejected
        assert report.completed == len(accepted)

    def test_microscopic_deadline_rejected(self, served_model, tokenizer):
        with PaletteServer(served_model, tokenizer) as server:
            request = server.submit(PROMPTS[0], max_new_tokens=3, deadline_s=1e-6)
            with pytest.raises(DeadlineExceeded):
                request.result(timeout=120.0)
            assert server.stats().rejected_deadline + server.stats().aborted_deadline >= 1

    def test_submit_when_not_running_raises(self, served_model, tokenizer):
        server = PaletteServer(served_model, tokenizer)
        try:
            with pytest.raises(ServerClosed):
                server.submit("hi")
        finally:
            server.close()

    def test_stop_fails_queued_requests(self, served_model, tokenizer):
        config = ServingConfig(max_batch_size=1, poll_interval_s=0.001)
        server = PaletteServer(served_model, tokenizer, config=config)
        server.start()
        requests = [server.submit(p, max_new_tokens=2) for p in PROMPTS[:4]]
        server.close()
        for request in requests:
            assert request.done
            if not request.ok:
                assert isinstance(request.error, (ServerClosed, DeadlineExceeded))


class TestFacade:
    def test_compress_wraps_linears(self, tokenizer):
        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
        model.to(rt.GPU)
        compressor = repro.compress(model, bits=3)
        assert isinstance(compressor, ModelCompressor)
        clustered = [
            m for _, m in model.named_modules() if isinstance(m, ClusteredLinear)
        ]
        assert clustered
        assert all(m.dkm_config.bits == 3 for m in clustered)

    def test_serve_overrides(self, served_model, tokenizer):
        server = repro.serve(
            served_model, tokenizer, start=False, max_batch_size=3
        )
        try:
            assert isinstance(server, PaletteServer)
            assert server.config.max_batch_size == 3
            assert not server.running
        finally:
            server.close()

    def test_serve_started_by_default(self, served_model, tokenizer):
        server = repro.serve(served_model, tokenizer)
        try:
            assert server.running
            assert server.generate(PROMPTS[0], max_new_tokens=2, timeout=120.0)
        finally:
            server.close()
        assert not server.running

    def test_serve_config_and_overrides_conflict(self, served_model, tokenizer):
        with pytest.raises(ValueError, match="not both"):
            repro.serve(
                served_model,
                tokenizer,
                config=ServingConfig(),
                max_batch_size=2,
            )

    def test_reexports(self):
        assert repro.DKMConfig is DKMConfig
        assert repro.CompressorConfig is CompressorConfig
        assert repro.ModelCompressor is ModelCompressor
        assert repro.ServingConfig is ServingConfig
        assert repro.PaletteServer is PaletteServer
        assert repro.get_default_serving_config is get_default_serving_config
        # Old deep imports stay valid.
        from repro.core.compressor import ModelCompressor as deep

        assert deep is ModelCompressor
