"""Chaos-engineering tests (see ``repro/core/faults.py`` and
``docs/robustness.md``).

The contract under test: every injectable fault -- worker kill, hang,
delay, transient exception, corrupted delta payload, dropped shm block --
is survived by the process backend with results (centroids, stats
counters) *bit-identical* to an undisturbed serial run; retries exhaust
into in-parent fallback and poison-layer quarantine; the respawn budget
exhausts into graceful backend degradation; and a hung worker is put
down within the watchdog deadline instead of blocking the sweep forever.
"""

import dataclasses
import pickle
import subprocess
import sys
import warnings
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    CompressorConfig,
    DKMConfig,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ModelCompressor,
    PoolExhausted,
    RobustnessWarning,
)
from repro.tensor.serialization import ShmLost


class _Stack(nn.Module):
    def __init__(self, n_layers=4, in_f=32, out_f=24, seed=0):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(in_f, out_f, bias=False, rng=np.random.default_rng(seed + i)),
            )


def _compressor(backend, num_workers=2, n_layers=4, seed=0, **config_kwargs):
    stack = _Stack(n_layers=n_layers, seed=seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=3, iters=3),
        config=CompressorConfig(
            backend=backend, num_workers=num_workers, **config_kwargs
        ),
    )
    compressor.compress(stack)
    return compressor, stack


def _stats(compressor):
    return {
        name: dataclasses.asdict(wrapper.step_cache.stats)
        for name, wrapper in compressor.wrapped.items()
    }


def _run_sweeps(compressor, n_sweeps=2):
    """A fixed two-sweep history; returns the final per-layer centroids."""
    results = None
    for _ in range(n_sweeps):
        results = compressor.precluster()
    return {name: result.centroids for name, result in results.items()}


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="meteor")

    def test_zero_based_sweep_rejected(self):
        with pytest.raises(ValueError, match="sweep"):
            FaultSpec(kind="kill", sweep=0)

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="kill", times=0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="hang", seconds=-1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="task_timeout_s"):
            CompressorConfig(task_timeout_s=0)
        with pytest.raises(ValueError, match="max_task_retries"):
            CompressorConfig(max_task_retries=-1)
        with pytest.raises(ValueError, match="max_layer_retries"):
            CompressorConfig(max_layer_retries=0)
        with pytest.raises(ValueError, match="max_pool_respawns"):
            CompressorConfig(max_pool_respawns=-1)


class TestInjectorDeterminism:
    def test_unpinned_layer_resolves_identically_across_runs(self):
        plan = FaultPlan.single("kill", sweep=2)
        names = [f"layer{i}" for i in range(6)]
        picks = []
        for _ in range(3):
            injector = FaultInjector(plan)
            injector.begin_sweep(2, names, "refine")
            fired = [n for n in names if injector.fire("kill", n)]
            picks.append(fired)
        assert picks[0] == picks[1] == picks[2]
        assert len(picks[0]) == 1

    def test_times_budget_is_consumed(self):
        plan = FaultPlan.single("transient", sweep=1, layer="a", times=2)
        injector = FaultInjector(plan)
        injector.begin_sweep(1, ["a", "b"], "refine")
        assert injector.fire("transient", "a") is not None
        assert injector.fire("transient", "a") is not None
        assert injector.fire("transient", "a") is None
        assert injector.log.count("transient") == 2

    def test_wrong_sweep_op_or_layer_never_fires(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="kill", sweep=2, layer="a", op="refine"),)
        )
        injector = FaultInjector(plan)
        injector.begin_sweep(1, ["a"], "refine")
        assert injector.fire("kill", "a") is None  # wrong sweep
        injector.begin_sweep(2, ["a"], "palettize")
        assert injector.fire("kill", "a") is None  # wrong op
        injector.begin_sweep(2, ["a"], "refine")
        assert injector.fire("kill", "b") is None  # wrong layer
        assert injector.fire("kill", "a") is not None


class TestFaultRecoveryBitIdentity:
    """Every injected fault is survived bit-identically to a serial run."""

    def _chaos_run(self, plan, n_sweeps=2, **config_kwargs):
        chaotic, _ = _compressor("process", fault_plan=plan, **config_kwargs)
        serial, _ = _compressor("serial")
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RobustnessWarning)
                chaos_result = _run_sweeps(chaotic, n_sweeps)
            serial_result = _run_sweeps(serial, n_sweeps)
            for name in serial_result:
                assert np.array_equal(serial_result[name], chaos_result[name]), name
            assert _stats(serial) == _stats(chaotic)
            assert chaotic.fault_log() is not None
            assert chaotic.fault_log().count() >= 1
        finally:
            chaotic.close()
        return chaotic

    def test_worker_kill_recovers(self):
        chaotic = self._chaos_run(FaultPlan.single("kill", sweep=1))
        assert chaotic._engine.respawns >= 1

    def test_kill_mid_warm_run_recovers(self):
        # Sweep 2 ships deltas; the kill forces respawn + full re-ship of
        # a slot whose layers were resident.
        self._chaos_run(FaultPlan.single("kill", sweep=2))

    def test_transient_error_retried_in_place(self):
        chaotic = self._chaos_run(
            FaultPlan.single("transient", sweep=1),
            retry_backoff_s=0.001,
        )
        assert chaotic._engine.respawns == 0  # retried, never respawned

    def test_delay_within_deadline_is_harmless(self):
        chaotic = self._chaos_run(
            FaultPlan.single("delay", sweep=1, seconds=0.2),
            task_timeout_s=30.0,
        )
        assert chaotic._engine.respawns == 0

    def test_corrupt_delta_detected_and_reshipped(self):
        # Deltas only ship from sweep 2 on; the digest check must catch
        # the corruption and re-ship full rather than diverge silently.
        chaotic = self._chaos_run(FaultPlan.single("corrupt_delta", sweep=2))
        assert chaotic.fault_log().count("corrupt_delta") == 1

    def test_dropped_shm_block_reexported(self):
        chaotic = self._chaos_run(FaultPlan.single("drop_shm", sweep=2), n_sweeps=3)
        assert chaotic.fault_log().count("drop_shm") == 1

    def test_multi_fault_plan_same_run(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="kill", sweep=1),
                FaultSpec(kind="transient", sweep=2),
                FaultSpec(kind="corrupt_delta", sweep=3),
            )
        )
        self._chaos_run(plan, n_sweeps=3, retry_backoff_s=0.001)


class TestWatchdog:
    @pytest.mark.timeout(120)
    def test_hung_worker_killed_within_deadline(self):
        """A worker napping far past ``task_timeout_s`` is put down, the
        slot respawned, and the sweep completes bit-identically -- well
        before the hang's nominal duration."""
        plan = FaultPlan.single("hang", sweep=1, seconds=600.0)
        chaotic, _ = _compressor(
            "process", fault_plan=plan, task_timeout_s=1.0
        )
        serial, _ = _compressor("serial")
        try:
            chaos_result = _run_sweeps(chaotic)
            serial_result = _run_sweeps(serial)
            for name in serial_result:
                assert np.array_equal(serial_result[name], chaos_result[name]), name
            assert _stats(serial) == _stats(chaotic)
            assert chaotic._engine.respawns >= 1
            assert chaotic.fault_log().count("hang") == 1
        finally:
            chaotic.close()


class TestQuarantine:
    def test_persistent_failure_quarantines_layer(self):
        """A fault that outlives the retry budget falls back in-parent and
        quarantines the layer; results stay bit-identical throughout."""
        plan = FaultPlan.single(
            "transient", sweep=1, layer="layer0", times=50
        )
        chaotic, _ = _compressor(
            "process",
            fault_plan=plan,
            max_task_retries=1,
            max_layer_retries=1,
            retry_backoff_s=0.001,
        )
        serial, _ = _compressor("serial")
        try:
            with pytest.warns(RobustnessWarning, match="quarantin"):
                chaos_result = _run_sweeps(chaotic, 1)
            assert "layer0" in chaotic._engine.quarantined
            # Sweep 2: the quarantined layer runs in-parent, the rest in
            # workers; everything still matches serial, counters included.
            chaos_result = _run_sweeps(chaotic, 1)
            serial_result = _run_sweeps(serial, 2)
            for name in serial_result:
                assert np.array_equal(serial_result[name], chaos_result[name]), name
            assert _stats(serial) == _stats(chaotic)
        finally:
            chaotic.close()


class TestDegradation:
    def test_pool_exhaustion_degrades_to_thread(self):
        """With a zero respawn budget, the first kill exhausts the pool and
        the compressor demotes process -> thread instead of failing."""
        plan = FaultPlan.single("kill", sweep=1)
        chaotic, _ = _compressor(
            "process", fault_plan=plan, max_pool_respawns=0
        )
        serial, _ = _compressor("serial")
        try:
            with pytest.warns(RobustnessWarning, match="degrading"):
                chaos_result = _run_sweeps(chaotic)
            serial_result = _run_sweeps(serial)
            assert chaotic.active_backend == "thread"
            assert len(chaotic.degradations) == 1
            assert chaotic.degradations[0][0] == "process"
            assert chaotic.degradations[0][1] == "thread"
            for name in serial_result:
                assert np.array_equal(serial_result[name], chaos_result[name]), name
            assert _stats(serial) == _stats(chaotic)
        finally:
            chaotic.close()

    def test_degrade_disabled_raises(self):
        plan = FaultPlan.single("kill", sweep=1)
        chaotic, _ = _compressor(
            "process", fault_plan=plan, max_pool_respawns=0, degrade=False
        )
        try:
            with pytest.raises(PoolExhausted):
                chaotic.precluster()
        finally:
            chaotic.close()


class TestShmLost:
    def test_typed_and_picklable(self):
        err = ShmLost("repro_gone_block")
        assert isinstance(err, FileNotFoundError)
        assert err.shm_name == "repro_gone_block"
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ShmLost)
        assert clone.shm_name == "repro_gone_block"

    def test_raised_on_attach_to_missing_block(self):
        from repro.tensor.serialization import ShmTensorHandle, attach_tensor_shm

        handle = ShmTensorHandle(
            shm_name="repro_never_created",
            dtype_name="float32",
            storage_numel=4,
            shape=(4,),
            strides=(1,),
            offset=0,
            version=0,
        )
        with pytest.raises(ShmLost) as info:
            attach_tensor_shm(handle)
        assert info.value.shm_name == "repro_never_created"


class TestResetDoubleFault:
    def test_reset_survives_failing_export_close(self):
        """Satellite regression: one export whose close() raises must not
        leak the other blocks or leave the engine dicts dirty (the seed
        teardown aborted its cleanup loop on the first failure)."""
        process, _ = _compressor("process")
        process.precluster()
        engine = process._engine
        exports = list(engine._state["exports"].values())
        assert len(exports) > 1
        sabotaged, survivors = exports[0], exports[1:]
        survivor_names = [export.name for export in survivors]
        original_close = sabotaged.close

        def _explode():
            raise OSError("injected close failure")

        sabotaged.close = _explode
        engine.reset()  # must not propagate the OSError
        assert engine._state["exports"] == {}
        assert engine._state["export_refs"] == {}
        assert engine._sync == {}
        for name in survivor_names:  # every other block was unlinked
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        original_close()  # release the sabotaged block for real
        engine.reset()  # idempotent under repeated calls
        process.close()


class TestAtexitBackstop:
    def test_exit_without_close_unlinks_block(self, tmp_path):
        """A process that exits with a live, finalizer-disarmed ShmExport
        still unlinks its block through the module atexit hook."""
        src = str(Path(__file__).resolve().parent.parent / "src")
        code = (
            "import sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "import numpy as np\n"
            "from repro.tensor.tensor import Tensor\n"
            "from repro.tensor.serialization import export_tensor_shm\n"
            "tensor = Tensor.from_numpy(np.arange(64, dtype=np.float32))\n"
            "export = export_tensor_shm(tensor)\n"
            "export._finalizer.detach()  # disarm the per-export safety net\n"
            "print(export.name, flush=True)\n"
            "# exit WITHOUT close(): only the atexit backstop can unlink\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        block = result.stdout.strip()
        assert block
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=block)
