"""Tests for optimizers, schedules, clipping, and the learner simulation."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.distributed import (
    LearnerGroup,
    all_gather,
    all_reduce_mean,
    broadcast,
    shard_rows,
)
from repro.memory import global_ledger, profile_memory
from repro.nn.module import Parameter
from repro.optim import SGD, AdamW, ConstantLR, CosineWithWarmup, clip_grad_norm_


def _quadratic_param(value=5.0):
    return Parameter.wrap(rt.tensor([value]), requires_grad=True)


def _step_quadratic(optimizer, param, n=50):
    for _ in range(n):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return abs(param.item())


class TestOptimizers:
    def test_sgd_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _step_quadratic(SGD([p], lr=0.1), p) < 0.01

    def test_sgd_momentum_minimizes(self):
        p = _quadratic_param()
        assert _step_quadratic(SGD([p], lr=0.05, momentum=0.9), p, n=150) < 0.05

    def test_adamw_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _step_quadratic(AdamW([p], lr=0.3), p, n=100) < 0.05

    def test_adamw_weight_decay_shrinks_weights(self):
        p = Parameter.wrap(rt.tensor([1.0]), requires_grad=True)
        opt = AdamW([p], lr=0.01, weight_decay=0.5)
        # Zero gradient: only decay acts.
        p.grad = rt.zeros(1)
        for _ in range(10):
            opt.step()
        assert 0 < p.item() < 1.0

    def test_params_without_grad_skipped(self):
        p = _quadratic_param()
        opt = AdamW([p], lr=0.1)
        opt.step()  # no grad yet; must not crash
        assert p.item() == 5.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            AdamW([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.0)

    def test_adamw_state_is_per_parameter(self):
        p1 = _quadratic_param(1.0)
        p2 = _quadratic_param(2.0)
        opt = AdamW([p1, p2], lr=0.1)
        loss = (p1 * p1).sum() + (p2 * p2 * 2.0).sum()
        loss.backward()
        opt.step()
        assert len(opt._m) == 2


class TestClipping:
    def test_clip_reduces_norm(self):
        params = [
            Parameter.wrap(rt.tensor([3.0]), requires_grad=True),
            Parameter.wrap(rt.tensor([4.0]), requires_grad=True),
        ]
        params[0].grad = rt.tensor([3.0])
        params[1].grad = rt.tensor([4.0])
        norm = clip_grad_norm_(params, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        new_norm = np.sqrt(sum(float(p.grad.item()) ** 2 for p in params))
        assert new_norm == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_when_below_max(self):
        p = Parameter.wrap(rt.tensor([1.0]), requires_grad=True)
        p.grad = rt.tensor([0.1])
        clip_grad_norm_([p], max_norm=1.0)
        assert p.grad.numpy()[0] == pytest.approx(0.1)

    def test_bad_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm_([], max_norm=0.0)


class TestSchedules:
    def test_constant(self):
        opt = SGD([_quadratic_param()], lr=0.5)
        sched = ConstantLR(opt)
        assert sched.step() == 0.5

    def test_cosine_warmup_profile(self):
        opt = SGD([_quadratic_param()], lr=1.0)
        sched = CosineWithWarmup(opt, warmup_steps=5, total_steps=20)
        lrs = [sched.step() for _ in range(20)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[4] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0, abs=1e-6)
        assert all(a >= b for a, b in zip(lrs[5:], lrs[6:]))  # decay monotone

    def test_cosine_validates_steps(self):
        opt = SGD([_quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            CosineWithWarmup(opt, warmup_steps=10, total_steps=10)


class TestLearnerGroup:
    def test_devices_named(self):
        group = LearnerGroup(4)
        assert group.primary.name == "cpu"
        assert [d.name for d in group.devices[1:]] == [
            "cpu:peer1",
            "cpu:peer2",
            "cpu:peer3",
        ]

    def test_single_learner(self):
        assert len(LearnerGroup(1).devices) == 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            LearnerGroup(0)


class TestCollectives:
    def test_shard_gather_roundtrip(self):
        group = LearnerGroup(4)
        t = rt.tensor(np.arange(10, dtype=np.float32), device="gpu")
        sharded = shard_rows(t, group)
        assert len(sharded.shards) == 4
        assert sharded.shards[0].device.name == "cpu"
        rebuilt = all_gather(sharded, rt.GPU)
        assert np.array_equal(rebuilt.numpy(), t.numpy())

    def test_shard_sizes_balanced(self):
        group = LearnerGroup(4)
        sharded = shard_rows(rt.zeros(10), group)
        sizes = [s.shape[0] for s in sharded.shards]
        assert sizes == [3, 3, 2, 2]
        assert sharded.nbytes_per_learner == 12

    def test_shard_2d_rows(self):
        group = LearnerGroup(2)
        t = rt.tensor(np.arange(12, dtype=np.float32).reshape(6, 2))
        sharded = shard_rows(t, group)
        assert sharded.shards[0].shape == (3, 2)
        rebuilt = all_gather(sharded, rt.CPU)
        assert np.array_equal(rebuilt.numpy(), t.numpy())

    def test_per_learner_memory_accounting(self):
        group = LearnerGroup(4)
        peer = group.devices[1]
        with profile_memory([group.primary.tracker, peer.tracker]) as prof:
            t = rt.tensor(np.zeros(400, dtype=np.float32), device="gpu")
            sharded = shard_rows(t, group)
            del t
            assert prof is not None
            local = sharded.local_shard.nbytes
            del sharded
        assert prof.peak_delta("cpu") == local == 400
        assert prof.peak_delta(peer.name) == 400

    def test_shard_traffic_recorded(self):
        group = LearnerGroup(2)
        ledger = global_ledger()
        before = ledger.total_bytes("gpu")
        t = rt.tensor(np.zeros(100, dtype=np.float32), device="gpu")
        shard_rows(t, group)
        assert ledger.total_bytes("gpu") - before == 400

    def test_all_reduce_mean(self):
        group = LearnerGroup(2)
        a = rt.tensor([1.0, 3.0], device=group.devices[0])
        b = rt.tensor([3.0, 5.0], device=group.devices[1])
        all_reduce_mean([a, b])
        assert np.array_equal(a.numpy(), [2.0, 4.0])
        assert np.array_equal(b.numpy(), [2.0, 4.0])

    def test_all_reduce_shape_mismatch(self):
        with pytest.raises(ValueError):
            all_reduce_mean([rt.zeros(2), rt.zeros(3)])

    def test_broadcast(self):
        group = LearnerGroup(3)
        t = rt.tensor([7.0], device=group.primary)
        replicas = broadcast(t, group)
        assert len(replicas) == 3
        assert replicas[0] is t
        for replica, dev in zip(replicas, group.devices):
            assert replica.device == dev
            assert replica.numpy()[0] == 7.0

    def test_sharded_tensor_validates_count(self):
        from repro.distributed.collective import ShardedTensor

        group = LearnerGroup(2)
        with pytest.raises(ValueError):
            ShardedTensor([rt.zeros(2)], group, (2,))
