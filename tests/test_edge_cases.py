"""Edge cases and failure-injection tests across the engine and core."""

import gc

import numpy as np
import pytest

import repro.tensor as rt
from repro.core import DKMConfig, EDKMConfig, SavedTensorPipeline
from repro.core.dkm import DKMClusterer
from repro.core.edkm import edkm_cluster
from repro.distributed import LearnerGroup, shard_rows, all_gather
from repro.memory import profile_memory
from repro.tensor import ops


class TestTensorEdgeCases:
    def test_empty_slice(self):
        t = rt.randn(4)
        s = t[2:2]
        assert s.shape == (0,)
        assert s.numel == 0

    def test_zero_dim_after_full_reduce_of_1d(self):
        t = rt.tensor([3.0])
        assert t.sum().shape == ()
        assert t.sum().item() == pytest.approx(3.0)

    def test_scalar_tensor_arithmetic(self):
        a = rt.tensor(5.0)
        assert a.shape == ()
        assert (a + 1.0).item() == 6.0

    def test_single_element_softmax(self):
        out = ops.softmax(rt.tensor([[7.0]]), dim=1)
        assert out.numpy()[0, 0] == pytest.approx(1.0)

    def test_expand_then_reduce_grad(self):
        a = rt.tensor([[2.0]], requires_grad=True)
        a.expand(5, 3).sum().backward()
        assert a.grad.numpy()[0, 0] == pytest.approx(15.0)

    def test_chain_of_casts(self):
        t = rt.randn(16)
        roundtrip = t.bfloat16().float().bfloat16().float()
        assert np.array_equal(roundtrip.numpy(), t.bfloat16().float().numpy())

    def test_deeply_nested_views_resolve(self):
        t = rt.randn(2, 3, 4)
        v = t.view(-1)
        for _ in range(20):
            v = v.view(24)
        assert v.shares_storage_with(t)

    def test_slice_of_slice(self):
        t = rt.randn(10)
        s = t[2:9][1:4]
        assert np.array_equal(s.numpy(), t.numpy()[2:9][1:4])
        assert s.shares_storage_with(t)

    def test_transpose_of_expand(self):
        t = rt.randn(1, 4)
        e = t.expand(3, 4).transpose(0, 1)
        assert e.shape == (4, 3)
        assert np.array_equal(e.numpy(), np.broadcast_to(t.numpy(), (3, 4)).T)

    def test_view_after_gc_of_base(self):
        t = rt.randn(4, 4)
        storage = t.storage
        v = t.view(-1)
        del t
        gc.collect()
        # The view keeps the storage alive.
        assert v.storage is storage
        assert v.numel == 16

    def test_bool_tensor_roundtrip(self):
        t = rt.tensor(np.array([True, False, True]))
        assert t.dtype is rt.bool_
        assert t.numpy().tolist() == [True, False, True]

    def test_int_tensor_cast_to_float_gradless(self):
        idx = rt.tensor(np.array([1, 2]))
        f = idx.cast("float32")
        assert f.dtype is rt.float32
        assert not f.requires_grad


class TestDKMDegenerateInputs:
    def test_constant_weights(self):
        """All-equal weights: one unique value, clustering must not NaN."""
        w = rt.Tensor.from_numpy(
            np.full(100, 0.125, dtype=np.float32),
            dtype="bfloat16", device="gpu", requires_grad=True,
        )
        clusterer = DKMClusterer(DKMConfig(bits=2, iters=3))
        out = edkm_cluster(w, clusterer)
        assert np.all(np.isfinite(out.numpy()))
        assert np.allclose(out.numpy(), 0.125, atol=1e-3)
        (out * out).sum().backward()
        assert np.all(np.isfinite(w.grad.numpy()))

    def test_two_distinct_values(self):
        values = np.where(np.arange(64) % 2 == 0, 0.5, -0.5).astype(np.float32)
        w = rt.Tensor.from_numpy(
            values, dtype="bfloat16", device="gpu", requires_grad=True
        )
        clusterer = DKMClusterer(DKMConfig(bits=2, iters=10))
        out = edkm_cluster(w, clusterer)
        # Two natural clusters; reconstruction should be near-exact.
        assert np.allclose(out.numpy(), values, atol=1e-2)

    def test_tiny_tensor(self):
        w = rt.Tensor.from_numpy(
            np.array([0.1, -0.2, 0.3], dtype=np.float32),
            dtype="bfloat16", device="gpu", requires_grad=True,
        )
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=2))
        out = edkm_cluster(w, clusterer)
        assert out.shape == (3,)

    def test_extreme_magnitudes(self):
        values = (np.random.default_rng(0).standard_normal(200) * 100).astype(
            np.float32
        )
        w = rt.Tensor.from_numpy(
            values, dtype="bfloat16", device="gpu", requires_grad=True
        )
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=5))
        out = clusterer.cluster_dense(w)
        assert np.all(np.isfinite(out.numpy()))

    def test_dense_and_fused_agree_on_degenerate_input(self):
        values = np.zeros(50, dtype=np.float32)
        w_a = rt.Tensor.from_numpy(values, dtype="bfloat16", device="gpu",
                                   requires_grad=True)
        w_b = rt.Tensor.from_numpy(values, dtype="bfloat16", device="gpu",
                                   requires_grad=True)
        out_a = DKMClusterer(DKMConfig(bits=2, iters=2)).cluster_dense(w_a)
        out_b = edkm_cluster(w_b, DKMClusterer(DKMConfig(bits=2, iters=2)))
        assert np.allclose(out_a.numpy(), out_b.numpy(), atol=1e-6)


class TestPipelineEdgeCases:
    def test_backward_without_offloadable_tensors(self):
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        x = rt.tensor([1.0, 2.0], requires_grad=True)  # CPU tensor
        with pipeline.step():
            (x * x).sum().backward()
        assert x.grad is not None

    def test_nested_steps_forbidden_state_is_clean(self):
        """Sequential steps each start with a clean registry."""
        pipeline = SavedTensorPipeline(
            EDKMConfig(marshal=True, uniquify=False, shard=False, group=None)
        )
        x = rt.randn(8, 8, device="gpu", requires_grad=True)
        with pipeline.step():
            (x * x).sum().backward()
        first_avoided = pipeline.stats.copies_avoided
        y = rt.randn(8, 8, device="gpu", requires_grad=True)
        with pipeline.step():
            (y * y).sum().backward()
        # Second step also gets exactly one dedup hit (same structure).
        assert pipeline.stats.copies_avoided == 2 * first_avoided

    def test_forward_only_step_no_backward(self):
        """Offloaded saved tensors are released when the graph dies."""
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        cpu = rt.CPU
        with profile_memory([cpu.tracker]) as prof:
            x = rt.randn(16, 16, device="gpu", requires_grad=True)
            with pipeline.step():
                out = (x * x).sum()
            del out
            gc.collect()
        assert prof.retained_delta("cpu") == 0

    def test_exception_inside_step_restores_hooks(self):
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        with pytest.raises(RuntimeError):
            with pipeline.step():
                raise RuntimeError("boom")
        # Hooks must be uninstalled: saving tensors copies nothing now.
        x = rt.randn(4, 4, device="gpu", requires_grad=True)
        before = pipeline.stats.copies_made
        (x * x).sum().backward()
        assert pipeline.stats.copies_made == before


class TestDistributedEdgeCases:
    def test_more_learners_than_rows(self):
        group = LearnerGroup(8)
        t = rt.tensor(np.arange(3, dtype=np.float32), device="gpu")
        sharded = shard_rows(t, group)
        sizes = [s.shape[0] for s in sharded.shards]
        assert sum(sizes) == 3
        assert max(sizes) == 1
        rebuilt = all_gather(sharded, rt.GPU)
        assert np.array_equal(rebuilt.numpy(), t.numpy())

    def test_single_row(self):
        group = LearnerGroup(4)
        t = rt.tensor(np.array([7.0], dtype=np.float32))
        sharded = shard_rows(t, group)
        rebuilt = all_gather(sharded, rt.CPU)
        assert rebuilt.numpy()[0] == 7.0

    def test_uint16_shard_dtype_preserved(self):
        group = LearnerGroup(2)
        t = rt.Tensor.from_numpy(
            np.arange(10, dtype=np.uint16), dtype="uint16", device="gpu"
        )
        sharded = shard_rows(t, group)
        assert sharded.dtype is rt.uint16
        rebuilt = all_gather(sharded, rt.GPU)
        assert rebuilt.dtype is rt.uint16
        assert np.array_equal(rebuilt.numpy(), t.numpy())
