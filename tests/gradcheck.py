"""Finite-difference gradient checking for the op tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

import repro.tensor as rt
from repro.tensor.tensor import Tensor


def numeric_grad(
    fn: Callable[[list[Tensor]], Tensor],
    arrays: list[np.ndarray],
    wrt: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(inputs))`` wrt input ``wrt``."""
    base = [a.astype(np.float64) for a in arrays]
    grad = np.zeros_like(base[wrt])
    it = np.nditer(grad, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        plus = [a.copy() for a in base]
        minus = [a.copy() for a in base]
        plus[wrt][idx] += eps
        minus[wrt][idx] -= eps
        f_plus = float(
            fn([rt.tensor(a.astype(np.float32)) for a in plus]).sum().item()
        )
        f_minus = float(
            fn([rt.tensor(a.astype(np.float32)) for a in minus]).sum().item()
        )
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[[list[Tensor]], Tensor],
    arrays: list[np.ndarray],
    rtol: float = 1e-2,
    atol: float = 1e-3,
) -> None:
    """Assert autograd gradients match finite differences for all inputs."""
    tensors = [
        rt.tensor(a.astype(np.float32), requires_grad=True) for a in arrays
    ]
    out = fn(tensors).sum()
    out.backward()
    for i, tensor in enumerate(tensors):
        expected = numeric_grad(fn, arrays, wrt=i)
        actual = tensor.grad.numpy().astype(np.float64)
        np.testing.assert_allclose(
            actual,
            expected,
            rtol=rtol,
            atol=atol,
            err_msg=f"gradient mismatch for input {i}",
        )
