"""Fast-path engine equivalence tests (ISSUE 1).

Three families of guarantees:

- the O(N) histogram uniquify is **bit-identical** to the sort-based
  ``np.unique`` decomposition on every dtype/shape/degenerate input;
- the ``np.bincount`` segment reductions match ``np.add.at`` references to
  float tolerance, including >2^16 segments, chunked multi-dim scatters,
  and empty inputs;
- the per-layer :class:`~repro.core.fastpath.StepCache` performs exactly
  one uniquify per layer per training step, keyed on the weight storage's
  version counter.
"""

import numpy as np
import pytest

import repro.nn as nn
import repro.tensor as rt
from repro.core import DKMConfig, ModelCompressor
from repro.core.compressor import ClusteredLinear
from repro.core.dkm import DKMClusterer
from repro.core.edkm import edkm_cluster
from repro.core.fastpath import StepCache
from repro.core.uniquify import (
    HISTOGRAM_MIN_SIZE,
    reset_uniquify_call_count,
    uniquify,
    uniquify_call_count,
)
from repro.optim import SGD
from repro.tensor.dtype import bfloat16, float16
from repro.tensor.ops.segment import scatter_add_rows, segment_sum
from repro.tensor.tensor import Tensor


def _bf16(values):
    return bfloat16.project(np.asarray(values, dtype=np.float32))


def _assert_bit_identical(a, b):
    assert np.array_equal(a.patterns, b.patterns)
    assert a.patterns.dtype == b.patterns.dtype
    assert np.array_equal(a.index_list, b.index_list)
    assert a.index_list.dtype == b.index_list.dtype
    assert np.array_equal(a.counts, b.counts)
    assert a.counts.dtype == b.counts.dtype
    assert np.array_equal(a.values, b.values, equal_nan=True)
    assert a.source_shape == b.source_shape


class TestHistogramUniquify:
    @pytest.mark.parametrize("dtype", [bfloat16, float16], ids=["bf16", "fp16"])
    @pytest.mark.parametrize("n", [0, 1, 7, HISTOGRAM_MIN_SIZE - 1, 5000, 200_000])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_sort(self, dtype, n, seed):
        values = np.random.default_rng(seed).standard_normal(n).astype(np.float32)
        w = dtype.project(values * 0.05)
        sort = uniquify(w, dtype, method="sort")
        hist = uniquify(w, dtype, method="histogram")
        auto = uniquify(w, dtype, method="auto")
        _assert_bit_identical(sort, hist)
        _assert_bit_identical(sort, auto)

    def test_constant_tensor(self):
        w = _bf16(np.full(300, 0.125))
        hist = uniquify(w, bfloat16, method="histogram")
        _assert_bit_identical(uniquify(w, bfloat16, method="sort"), hist)
        assert hist.n_unique == 1
        assert hist.counts[0] == 300

    def test_special_values(self):
        # -0.0 and 0.0 are distinct bit patterns; inf/nan must round-trip.
        w = np.array(
            [0.0, -0.0, np.inf, -np.inf, np.nan, 1.5, 1.5], dtype=np.float16
        )
        sort = uniquify(w, float16, method="sort")
        hist = uniquify(w, float16, method="histogram")
        _assert_bit_identical(sort, hist)
        assert hist.n_unique == 6  # the two 1.5s collapse, +-0.0 do not

    def test_multidim_shape_preserved(self):
        w = _bf16(np.random.default_rng(3).standard_normal((40, 60)))
        hist = uniquify(w, bfloat16, method="histogram")
        assert hist.source_shape == (40, 60)
        assert np.array_equal(hist.reconstruct_values().astype(np.float32), w)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown uniquify method"):
            uniquify(_bf16([1.0]), bfloat16, method="quantum")

    def test_call_counter_increments(self):
        reset_uniquify_call_count()
        uniquify(_bf16([1.0, 2.0]), bfloat16)
        uniquify(_bf16([1.0, 2.0]), bfloat16)
        assert uniquify_call_count() == 2


class TestSegmentSum:
    def _reference(self, vals, ids, n):
        out = np.zeros(n, dtype=np.float64)
        np.add.at(out, ids, vals)
        return out

    @pytest.mark.parametrize("n_segments", [1, 8, 1 << 16, (1 << 16) + 37])
    def test_matches_add_at(self, n_segments):
        rng = np.random.default_rng(n_segments)
        ids = rng.integers(0, n_segments, size=10_000, dtype=np.int64)
        vals = rng.standard_normal(10_000).astype(np.float32)
        got = segment_sum(vals, ids, n_segments)
        assert got.shape == (n_segments,)
        np.testing.assert_allclose(got, self._reference(vals, ids, n_segments))

    def test_beyond_uint16_guard(self):
        # Segment count past the 2^16 pattern-domain bound (int32 index
        # territory): the reduction must not assume uint16-addressable rows.
        n = (1 << 16) + 1000
        ids = np.arange(n, dtype=np.int64)
        got = segment_sum(np.ones(n, dtype=np.float32), ids, n)
        assert got.sum() == n
        assert got[-1] == 1.0

    def test_uint16_ids_accepted(self):
        ids = np.array([0, 3, 3, 1], dtype=np.uint16)
        got = segment_sum(np.array([1.0, 2.0, 3.0, 4.0]), ids, 4)
        np.testing.assert_allclose(got, [1.0, 4.0, 0.0, 5.0])

    def test_empty(self):
        got = segment_sum(np.array([]), np.array([], dtype=np.int64), 5)
        assert got.shape == (5,)
        assert not got.any()

    def test_out_of_range_id_raises(self):
        with pytest.raises(IndexError, match="out of range"):
            segment_sum(np.ones(3), np.array([0, 1, 5], dtype=np.int64), 5)

    def test_out_of_range_row_raises(self):
        with pytest.raises(IndexError, match="out of range"):
            scatter_add_rows(
                np.array([0, 7], dtype=np.int64),
                np.ones((2, 4), dtype=np.float32),
                7,
            )


class TestScatterAddRows:
    def _reference(self, idx, grad, num_rows):
        out = np.zeros((num_rows,) + grad.shape[1:], dtype=np.float64)
        np.add.at(out, idx, grad)
        return out

    @pytest.mark.parametrize("shape", [(50, 1), (50, 16), (1, 4), (1000, 3)])
    def test_matches_add_at(self, shape):
        rng = np.random.default_rng(shape[1])
        num_rows = 17
        idx = rng.integers(0, num_rows, size=shape[0], dtype=np.int64)
        grad = rng.standard_normal(shape).astype(np.float32)
        got = scatter_add_rows(idx, grad, num_rows)
        np.testing.assert_allclose(got, self._reference(idx, grad, num_rows))

    def test_chunked_equals_unchunked(self):
        rng = np.random.default_rng(9)
        idx = rng.integers(0, 32, size=500, dtype=np.int64)
        grad = rng.standard_normal((500, 24)).astype(np.float32)
        whole = scatter_add_rows(idx, grad, 32)
        chunked = scatter_add_rows(idx, grad, 32, chunk_elems=128)
        np.testing.assert_array_equal(whole, chunked)

    def test_empty_gather(self):
        got = scatter_add_rows(
            np.array([], dtype=np.int64), np.zeros((0, 8), dtype=np.float32), 6
        )
        assert got.shape == (6, 8)
        assert not got.any()

    def test_zero_width_rows(self):
        got = scatter_add_rows(
            np.array([0, 1], dtype=np.int64), np.zeros((2, 0), dtype=np.float32), 2
        )
        assert got.shape == (2, 0)

    def test_index_select_backward_empty_indices(self):
        # Forward permits a zero-length gather; backward must yield a zero
        # gradient, not crash in the reshape.
        weight = Tensor.from_numpy(
            np.ones((4, 3), dtype=np.float32), requires_grad=True
        )
        idx = Tensor.from_numpy(np.array([], dtype=np.int64))
        out = rt.ops.index_select(weight, idx)
        assert out.shape == (0, 3)
        out.sum().backward()
        assert not weight.grad.numpy().any()

    @pytest.mark.parametrize("num_rows", [4, 100], ids=["dense", "sparse"])
    def test_index_select_backward_duplicates(self, num_rows):
        # End-to-end through the autograd op: duplicate rows must sum grads
        # on both sides of the density dispatch (bincount vs add.at).
        weight = Tensor.from_numpy(
            np.arange(num_rows * 3, dtype=np.float32).reshape(num_rows, 3),
            requires_grad=True,
        )
        idx = Tensor.from_numpy(np.array([1, 1, 3, 0, 1], dtype=np.int64))
        out = rt.ops.index_select(weight, idx)
        (out * out).sum().backward()
        expected = np.zeros((num_rows, 3), dtype=np.float64)
        np.add.at(expected, idx.numpy(), 2.0 * weight.numpy()[idx.numpy()])
        np.testing.assert_allclose(weight.grad.numpy(), expected, rtol=1e-5)


class TestTakeAlongDimBackward:
    def _reference(self, idx, grad, shape, dim):
        # The fancy-key np.add.at formulation the bincount path replaced.
        out = np.zeros(shape, dtype=np.float64)
        grids = np.ogrid[tuple(slice(s) for s in idx.shape)]
        key = list(np.broadcast_arrays(*grids))
        key[dim] = idx
        np.add.at(out, tuple(key), grad)
        return out

    @pytest.mark.parametrize("dim", [0, 1, 2])
    def test_matches_add_at(self, dim):
        rng = np.random.default_rng(dim)
        shape = (3, 5, 4)
        sel_shape = list(shape)
        sel_shape[dim] = 2
        a = Tensor.from_numpy(
            rng.standard_normal(shape).astype(np.float32), requires_grad=True
        )
        idx_np = rng.integers(0, shape[dim], size=sel_shape, dtype=np.int64)
        idx = Tensor.from_numpy(idx_np)
        out = rt.ops.take_along_dim(a, idx, dim=dim)
        (out * out).sum().backward()
        grad_out = 2.0 * np.take_along_axis(a.numpy(), idx_np, axis=dim)
        expected = self._reference(idx_np, grad_out, shape, dim)
        np.testing.assert_allclose(a.grad.numpy(), expected, rtol=1e-5, atol=1e-6)

    def test_negative_indices(self):
        a = Tensor.from_numpy(
            np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True
        )
        idx_np = np.array([[-1], [0], [-2]], dtype=np.int64)
        out = rt.ops.take_along_dim(a, Tensor.from_numpy(idx_np), dim=1)
        out.sum().backward()
        expected = np.zeros((3, 4), dtype=np.float32)
        expected[0, 3] = 1.0
        expected[1, 0] = 1.0
        expected[2, 2] = 1.0
        np.testing.assert_array_equal(a.grad.numpy(), expected)

    def test_duplicate_indices_accumulate(self):
        a = Tensor.from_numpy(np.zeros((2, 3), dtype=np.float32), requires_grad=True)
        idx_np = np.array([[1, 1, 1], [0, 0, 2]], dtype=np.int64)
        out = rt.ops.take_along_dim(a, Tensor.from_numpy(idx_np), dim=1)
        out.sum().backward()
        expected = np.array([[0, 3, 0], [2, 0, 1]], dtype=np.float32)
        np.testing.assert_array_equal(a.grad.numpy(), expected)


class TestFactorizedBackward:
    def test_matches_add_at_segment_reference(self):
        # The factorized backward's segment sums vs a hand-rolled np.add.at
        # reference on a duplicate-heavy tensor.
        from repro.core.edkm import _backward_factorized
        from repro.core.uniquify import attention_table

        rng = np.random.default_rng(0)
        w = _bf16(rng.choice([-0.5, -0.1, 0.0, 0.2, 0.4], size=400))
        unique = uniquify(w, bfloat16)
        c = np.linspace(-0.6, 0.6, 8).astype(np.float32)
        tau = 0.01
        table = attention_table(unique.values, c, tau)
        g = rng.standard_normal(400).astype(np.float32)
        index_list = unique.index_list.astype(np.int64)

        grad_w, grad_c = _backward_factorized(
            table, index_list, unique.values, c, g, tau
        )

        seg_ref = np.zeros(unique.n_unique, dtype=np.float32)
        np.add.at(seg_ref, index_list, g)
        grad_attention_u = seg_ref[:, None] * c[None, :]
        inner_u = (table * grad_attention_u).sum(axis=1, keepdims=True)
        grad_logits_u = table * (grad_attention_u - inner_u)
        diff_u = unique.values[:, None] - c[None, :]
        grad_c_ref = table.T @ seg_ref + (grad_logits_u * (2.0 * diff_u / tau)).sum(
            axis=0
        )
        np.testing.assert_allclose(grad_c, grad_c_ref, rtol=1e-4, atol=1e-6)
        assert grad_w.shape == (400,)


class TestStorageVersionCounter:
    def test_inplace_writes_bump_version(self):
        t = Tensor.from_numpy(np.zeros(4, dtype=np.float32))
        v0 = t.storage.version
        t.copy_(np.ones(4, dtype=np.float32))
        t.fill_(2.0)
        t._unsafe_add_(np.ones(4, dtype=np.float32))
        assert t.storage.version == v0 + 3

    def test_views_share_version(self):
        t = Tensor.from_numpy(np.zeros((2, 2), dtype=np.float32))
        view = t.reshape(-1)
        view.fill_(1.0)
        assert t.storage.version == view.storage.version


class TestStepCache:
    def _weights(self, n=4096, seed=0):
        values = np.random.default_rng(seed).standard_normal(n).astype(np.float32)
        return Tensor.from_numpy(values * 0.05, dtype=bfloat16)

    def test_second_uniquify_is_cached(self):
        cache = StepCache()
        w = self._weights()
        reset_uniquify_call_count()
        first = cache.uniquify(w, bfloat16)
        second = cache.uniquify(w, bfloat16)
        assert first is second
        assert uniquify_call_count() == 1
        assert cache.stats.uniquify_hits == 1
        assert cache.stats.uniquify_misses == 1

    def test_write_invalidates(self):
        cache = StepCache()
        w = self._weights()
        first = cache.uniquify(w, bfloat16)
        w.copy_(w._compute() * 0.5)  # optimizer-style in-place write
        second = cache.uniquify(w, bfloat16)
        assert first is not second
        assert cache.stats.uniquify_misses == 2

    def test_different_storage_misses(self):
        cache = StepCache()
        cache.uniquify(self._weights(seed=1), bfloat16)
        cache.uniquify(self._weights(seed=2), bfloat16)
        assert cache.stats.uniquify_misses == 2

    def test_table_roundtrip_and_invalidation(self):
        cache = StepCache()
        w = self._weights()
        unique = cache.uniquify(w, bfloat16)
        c = np.linspace(-1, 1, 8).astype(np.float32)
        table = np.full((unique.n_unique, 8), 0.125, dtype=np.float32)
        cache.store_table(c, 0.01, table)
        assert cache.lookup_table(c, 0.01) is table
        assert cache.lookup_table(c, 0.02) is None  # temperature mismatch
        assert cache.lookup_table(c + 1.0, 0.01) is None  # centroid mismatch
        w.copy_(w._compute() * 2.0)
        cache.uniquify(w, bfloat16)  # miss drops the stale table
        assert cache.lookup_table(c, 0.01) is None

    def test_column_vector_centroids_hit(self):
        """Regression: ``store_table`` used to keep centroids in their
        original shape while ``lookup_table`` compared against a flattened
        key, so ``(k, 1)`` column-vector centroids never hit and the
        refine->forward table carry-over was silently dead."""
        cache = StepCache()
        w = self._weights()
        unique = cache.uniquify(w, bfloat16)
        c_flat = np.linspace(-1, 1, 8).astype(np.float32)
        c_column = c_flat.reshape(-1, 1)
        table = np.full((unique.n_unique, 8), 0.125, dtype=np.float32)
        cache.store_table(c_column, 0.01, table)
        assert cache.lookup_table(c_column, 0.01) is table
        assert cache.lookup_table(c_flat, 0.01) is table  # shape-agnostic
        assert cache.stats.table_hits == 2

    def test_refine_and_forward_share_one_uniquify(self):
        w = self._weights()
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=3))
        reset_uniquify_call_count()
        edkm_cluster(w, clusterer)
        assert uniquify_call_count() == 1
        assert clusterer.fastpath.stats.table_hits == 1


class TestOneUniquifyPerLayerPerStep:
    def _train_steps(self, model, params, steps, in_f, n_layers):
        opt = SGD(params, lr=0.05)
        per_step = []
        for step in range(steps):
            x = rt.Tensor.from_numpy(
                np.random.default_rng(step)
                .standard_normal((4, in_f))
                .astype(np.float32),
                device="gpu",
            )
            before = uniquify_call_count()
            out = model(x)
            (out * out).sum().backward()
            opt.step()
            per_step.append(uniquify_call_count() - before)
        return per_step

    def test_single_layer(self):
        layer = nn.Linear(16, 8, rng=np.random.default_rng(0))
        layer.to("gpu")
        wrapped = ClusteredLinear(layer, DKMConfig(bits=2, iters=3))
        wrapped.train()
        per_step = self._train_steps(
            wrapped, list(wrapped.parameters()), steps=4, in_f=16, n_layers=1
        )
        assert per_step == [1, 1, 1, 1]

    def test_multi_layer_model(self):
        model = nn.SwiGLUMLP(12, 24, rng=np.random.default_rng(1))
        model.to("gpu")
        compressor = ModelCompressor(DKMConfig(bits=2, iters=2))
        compressor.compress(model)
        model.train()
        n_layers = len(compressor.wrapped)
        assert n_layers >= 2
        per_step = self._train_steps(
            model, list(model.parameters()), steps=3, in_f=12, n_layers=n_layers
        )
        assert per_step == [n_layers] * 3

        report = compressor.fastpath_report()
        assert set(report.per_layer) == set(compressor.wrapped)
        total = report.total
        # Every step: refine misses once (fresh weight version), the eDKM
        # forward hits; the carried table is reused by every forward.
        assert total.uniquify_misses == 3 * n_layers
        assert total.uniquify_hits == 3 * n_layers
        assert total.table_hits == 3 * n_layers
        assert "TOTAL" in report.summary()

        # The report is a snapshot: more forwards must not mutate it.
        model(
            rt.Tensor.from_numpy(
                np.random.default_rng(99).standard_normal((4, 12)).astype(np.float32),
                device="gpu",
            )
        )
        assert report.total.uniquify_hits == total.uniquify_hits

        # release_step_caches drops the retained decompositions; the next
        # forward re-uniquifies from scratch.
        compressor.release_step_caches()
        reset_uniquify_call_count()
        model(
            rt.Tensor.from_numpy(
                np.random.default_rng(100).standard_normal((4, 12)).astype(np.float32),
                device="gpu",
            )
        )
        assert uniquify_call_count() == n_layers
