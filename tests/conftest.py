"""Shared fixtures.

Devices are process-global accounting domains, so tests measure *deltas*
via ``profile_memory`` rather than absolute tracker values.  The trained
model fixture is session-scoped: several evaluation-dependent tests reuse
one short fine-tune.
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

import repro.tensor as rt
from repro.data import FactWorld, alpaca_batches, corpus_batches, generate_alpaca, generate_corpus
from repro.data.corpus import corpus_vocabulary
from repro.llm import MICRO, FinetuneConfig, WordTokenizer, build_model, train_causal_lm
from tools.repolint import tsan

try:  # CI installs pytest-timeout and adds a global --timeout ceiling.
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:  # local runs: SIGALRM fallback below stands in
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    """Register the ``timeout`` marker when pytest-timeout is absent.

    The watchdog/chaos tests mark themselves ``@pytest.mark.timeout(N)``
    so a recovery-path regression fails fast instead of hanging the
    suite.  CI gets the real plugin; locally (the container installs
    nothing) the marker must still be known, and the fixture below
    enforces it with SIGALRM.
    """
    if not _HAVE_PYTEST_TIMEOUT:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer "
            "(pytest-timeout fallback)",
        )


@pytest.fixture(autouse=True)
def _timeout_fallback(request):
    """SIGALRM-based stand-in for pytest-timeout on bare local runs.

    Only engages for tests carrying a ``timeout`` marker, only on the
    main thread of a POSIX interpreter, and only when the real plugin is
    missing -- pytest-timeout takes precedence whenever installed.
    """
    marker = request.node.get_closest_marker("timeout")
    if (
        marker is None
        or _HAVE_PYTEST_TIMEOUT
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 300

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds}s timeout (SIGALRM fallback)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


# Single authoritative seed for every pseudo-random source the suite
# touches.  CI runs the suite across a Python-version matrix; seeding both
# numpy's legacy global RNG and the tensor-library RNG in one autouse
# fixture keeps every test (and any test that forgets to pass an explicit
# generator) reproducible across interpreters and orderings.
SUITE_SEED = 0


@pytest.fixture(autouse=True)
def _seed_everything() -> int:
    np.random.seed(SUITE_SEED)
    rt.manual_seed(SUITE_SEED)
    return SUITE_SEED


@pytest.fixture(autouse=True)
def _tsan_check(request):
    """Fail any test during which tsan-lite recorded a lock violation.

    Inert unless the session runs under ``REPRO_TSAN=1`` (see the
    repo-level ``conftest.py``, which installs the instrumentation before
    collection).  Violations are recorded, not raised, at the racy access
    -- this fixture is where they become a test failure, attributed to
    the test that triggered them.
    """
    if not tsan.enabled():
        yield
        return
    watermark = tsan.violation_count()
    yield
    new = tsan.violations_since(watermark)
    if new:
        details = "\n".join(f"  {v.render()}" for v in new[:20])
        pytest.fail(
            f"tsan-lite: {len(new)} guarded-attribute access(es) without "
            f"the owning lock held:\n{details}",
            pytrace=False,
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(SUITE_SEED)


@pytest.fixture
def gpu():
    return rt.GPU


@pytest.fixture
def cpu():
    return rt.CPU


@pytest.fixture(scope="session")
def world() -> FactWorld:
    return FactWorld(seed=0)


@pytest.fixture(scope="session")
def tokenizer(world) -> WordTokenizer:
    return WordTokenizer(corpus_vocabulary(world))


@pytest.fixture(scope="session")
def trained_model(world, tokenizer):
    """A briefly fine-tuned MICRO model that is clearly above chance."""
    corpus = generate_corpus(world, 1200, seed=1)
    alpaca = generate_alpaca(world, 400, seed=2)
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
    model.to(rt.GPU)
    cfg = FinetuneConfig(lr=3e-3)
    train_causal_lm(
        model, corpus_batches(corpus, tokenizer, 16, rt.GPU, epochs=2, seed=3), cfg
    )
    train_causal_lm(
        model, alpaca_batches(alpaca, tokenizer, 16, rt.GPU, epochs=1, seed=4), cfg
    )
    model.eval()
    return model


@pytest.fixture(scope="session")
def trained_state(trained_model):
    """Snapshot of the trained model's parameters (tests must restore)."""
    return {k: v.numpy().copy() for k, v in trained_model.state_dict().items()}


@pytest.fixture
def restored_model(trained_model, trained_state):
    """The trained model with parameters freshly restored to the snapshot.

    Use only for tests that mutate parameter *values*; tests that change
    the module structure (compression wrappers) must use ``model_factory``.
    """
    for name, param in trained_model.state_dict().items():
        param.copy_(trained_state[name])
    trained_model.eval()
    yield trained_model
    for name, param in trained_model.state_dict().items():
        param.copy_(trained_state[name])
    trained_model.eval()


@pytest.fixture
def model_factory(tokenizer, trained_state):
    """Builds fresh MICRO models pre-loaded with the trained snapshot."""

    def build():
        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
        model.to(rt.GPU)
        for name, param in model.state_dict().items():
            param.copy_(trained_state[name])
        model.eval()
        return model

    return build
