"""Tests for the fused eDKM op: equivalence with dense DKM and footprint."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.core import DKMConfig
from repro.core.dkm import DKMClusterer
from repro.core.edkm import EDKMClusterAssign, cluster, edkm_cluster


def _weights_np(n=800, seed=0):
    return (np.random.default_rng(seed).standard_normal(n) * 0.05).astype(np.float32)


def _tensor(values, requires_grad=True, dtype="bfloat16"):
    return rt.Tensor.from_numpy(
        values, dtype=dtype, device="gpu", requires_grad=requires_grad
    )


def _run(path, values, config=None, reconstruct=True, grad_seed=1):
    """Run dense or fused clustering; return (output, weight grad)."""
    config = config or DKMConfig(bits=3, iters=4)
    w = _tensor(values)
    clusterer = DKMClusterer(config)
    if path == "dense":
        out = clusterer.cluster_dense(w)
    else:
        out = edkm_cluster(w, clusterer, reconstruct_backward=reconstruct)
    upstream = np.random.default_rng(grad_seed).standard_normal(out.shape)
    (out * rt.Tensor.from_numpy(upstream.astype(np.float32), device="gpu")).sum().backward()
    return out.numpy(), w.grad.numpy()


class TestEquivalence:
    def test_outputs_match_dense(self):
        values = _weights_np()
        out_dense, _ = _run("dense", values)
        out_fused, _ = _run("fused", values)
        assert np.allclose(out_dense, out_fused, atol=1e-6)

    def test_gradients_match_dense(self):
        values = _weights_np()
        _, grad_dense = _run("dense", values)
        _, grad_fused = _run("fused", values)
        scale = np.abs(grad_dense).max()
        assert np.allclose(grad_fused, grad_dense, atol=1e-4 * max(scale, 1))

    def test_factorized_backward_matches_reconstruction(self):
        values = _weights_np()
        _, grad_recon = _run("fused", values, reconstruct=True)
        _, grad_fact = _run("fused", values, reconstruct=False)
        scale = np.abs(grad_recon).max()
        assert np.allclose(grad_fact, grad_recon, atol=1e-4 * max(scale, 1))

    def test_equivalence_across_bit_widths(self):
        values = _weights_np(400)
        for bits in (2, 3, 4):
            config = DKMConfig(bits=bits, iters=3)
            out_dense, grad_dense = _run("dense", values, config)
            out_fused, grad_fused = _run("fused", values, config)
            assert np.allclose(out_dense, out_fused, atol=1e-6), bits
            scale = max(np.abs(grad_dense).max(), 1)
            assert np.allclose(grad_fused, grad_dense, atol=1e-4 * scale), bits

    def test_equivalence_with_fp16_weights(self):
        values = _weights_np(400)
        config = DKMConfig(bits=3, iters=3, weight_dtype=rt.float16)
        w_dense = _tensor(values, dtype="float16")
        w_fused = _tensor(values, dtype="float16")
        cl_a, cl_b = DKMClusterer(config), DKMClusterer(config)
        out_dense = cl_a.cluster_dense(w_dense)
        out_fused = edkm_cluster(w_fused, cl_b)
        assert np.allclose(
            out_dense.numpy().astype(np.float32),
            out_fused.numpy().astype(np.float32),
            atol=1e-3,
        )

    def test_2d_weights(self):
        values = _weights_np(96).reshape(12, 8)
        out_dense, grad_dense = _run("dense", values)
        out_fused, grad_fused = _run("fused", values)
        assert out_fused.shape == (12, 8)
        assert np.allclose(out_dense, out_fused, atol=1e-6)
        assert np.allclose(grad_fused, grad_dense, atol=1e-4)


class TestFusedOpMechanics:
    def test_requires_16bit_dtype(self):
        w = rt.Tensor.from_numpy(
            _weights_np(32), dtype="float32", device="gpu", requires_grad=True
        )
        c = rt.Tensor.from_numpy(np.linspace(-0.1, 0.1, 8).astype(np.float32), device="gpu")
        with pytest.raises(TypeError, match="16-bit"):
            EDKMClusterAssign.apply(w, c, 1e-3)

    def test_saved_tensors_are_factored_representation(self):
        """The fused op saves table + index + patterns + centroids, not the map."""
        packed = []

        def pack(t):
            packed.append((t.shape, t.dtype.name))
            return t

        w = _tensor(_weights_np(1000))
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=2))
        with rt.saved_tensors_hooks(pack, lambda h: h):
            edkm_cluster(w, clusterer)
        shapes = {shape for shape, _ in packed}
        dtypes = {name for _, name in packed}
        # Index list of N entries, saved as uint16.
        assert (1000,) in shapes
        assert "uint16" in dtypes
        # No N x k tensor was saved.
        assert not any(s == (1000, 8) for s in shapes)

    def test_index_list_uses_uint16(self):
        w = _tensor(_weights_np(500))
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=2))
        packed = []
        with rt.saved_tensors_hooks(lambda t: packed.append(t) or t, lambda h: h):
            edkm_cluster(w, clusterer)
        index_tensors = [t for t in packed if t.dtype is rt.uint16 and t.shape == (500,)]
        assert len(index_tensors) == 1

    def test_no_centroid_grad_when_not_required(self):
        w = _tensor(_weights_np(300))
        c = rt.Tensor.from_numpy(
            np.linspace(-0.1, 0.1, 8).astype(np.float32), device="gpu"
        )
        out = EDKMClusterAssign.apply(w, c, 1e-3)
        out.sum().backward()
        assert w.grad is not None
        assert c.grad is None

    def test_centroid_grad_when_required(self):
        w = _tensor(_weights_np(300))
        c = rt.Tensor.from_numpy(
            np.linspace(-0.1, 0.1, 8).astype(np.float32),
            device="gpu",
            requires_grad=True,
        )
        out = EDKMClusterAssign.apply(w, c, 1e-3)
        out.sum().backward()
        assert c.grad is not None
        assert c.grad.shape == (8,)

    def test_centroid_grad_matches_dense_composition(self):
        """Fused dC must equal the dense composed graph's dC."""
        values = _weights_np(200)
        c_np = np.linspace(-0.1, 0.1, 8).astype(np.float32)
        tau = 1e-3

        # Dense: compose from primitives with c requiring grad.
        w_d = _tensor(values, requires_grad=False)
        c_d = rt.Tensor.from_numpy(c_np, device="gpu", requires_grad=True)
        flat = w_d.reshape(-1)
        diff = flat.unsqueeze(1) - c_d.unsqueeze(0)
        attention = ((diff * diff) * (-1.0 / tau)).softmax(dim=1)
        out_dense = (attention @ c_d.unsqueeze(1)).reshape(w_d.shape)
        out_dense.sum().backward()

        # Fused.
        w_f = _tensor(values, requires_grad=False)
        c_f = rt.Tensor.from_numpy(c_np, device="gpu", requires_grad=True)
        out_fused = EDKMClusterAssign.apply(w_f, c_f, tau)
        out_fused.sum().backward()

        scale = max(np.abs(c_d.grad.numpy()).max(), 1.0)
        assert np.allclose(
            c_f.grad.numpy(), c_d.grad.numpy(), atol=5e-3 * scale, rtol=1e-2
        )

    def test_dispatch_helper(self):
        values = _weights_np(100)
        w = _tensor(values)
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=2))
        out_unique = cluster(w, clusterer, uniquify_enabled=True)
        w2 = _tensor(values)
        clusterer2 = DKMClusterer(DKMConfig(bits=3, iters=2))
        out_dense = cluster(w2, clusterer2, uniquify_enabled=False)
        assert np.allclose(out_unique.numpy(), out_dense.numpy(), atol=1e-6)
