"""Direct tests for :mod:`repro.distributed.collective`.

The module predates its first consumer (the sharded cluster scheduler);
wiring it in surfaced two defects, kept here as regression tests:

- ``broadcast`` returned the *source tensor itself* as the local
  learner's replica, so an in-place update through the replica silently
  corrupted the master copy -- fatal for the scheduler's rejoin path,
  which re-ships pristine master weights to a respawned node.
- Ledger records used ``Tensor.nbytes`` (the *storage* footprint, shared
  across views), so a collective over a row-slice view billed the whole
  backing storage instead of the bytes actually moved.
"""

import numpy as np
import pytest

from repro.distributed import (
    LearnerGroup,
    ShardedTensor,
    all_gather,
    all_reduce_mean,
    broadcast,
    logical_nbytes,
    shard_rows,
)
from repro.memory.traffic import global_ledger
from repro.tensor.dtype import bfloat16, float32
from repro.tensor.tensor import Tensor


def _tensor(shape, seed=0, dtype=float32, device=None):
    values = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
    kwargs = {"dtype": dtype}
    if device is not None:
        kwargs["device"] = device
    return Tensor.from_numpy(values, **kwargs)


@pytest.fixture()
def ledger():
    ledger = global_ledger()
    ledger.clear()
    yield ledger
    ledger.clear()


class TestLogicalNbytes:
    def test_owner_matches_storage(self):
        tensor = _tensor((8, 8))
        assert logical_nbytes(tensor) == 8 * 8 * 4 == tensor.nbytes

    def test_view_counts_only_its_elements(self):
        """Regression: a 2-row slice of an 8x8 storage moves 2x8 elements,
        not 8x8 -- ``Tensor.nbytes`` reports the latter."""
        base = _tensor((8, 8))
        view = base[0:2]
        assert logical_nbytes(view) == 2 * 8 * 4
        assert view.nbytes == 8 * 8 * 4  # storage bytes: the defect's source


class TestShardRows:
    @pytest.mark.parametrize("dtype", [float32, bfloat16], ids=["f32", "bf16"])
    def test_round_trip(self, dtype):
        group = LearnerGroup(4)
        tensor = _tensor((10, 6), dtype=dtype, device=group.primary)
        sharded = shard_rows(tensor, group)
        gathered = all_gather(sharded, group.primary)
        assert gathered.shape == tensor.shape
        assert gathered.dtype is dtype
        assert np.array_equal(gathered._np(), tensor._np())

    def test_round_trip_1d(self):
        group = LearnerGroup(3)
        tensor = _tensor((7,), device=group.primary)
        gathered = all_gather(shard_rows(tensor, group), group.primary)
        assert np.array_equal(gathered._np(), tensor._np())

    def test_fewer_rows_than_learners(self):
        """np.array_split yields empty shards; they must survive the trip."""
        group = LearnerGroup(4)
        tensor = _tensor((2, 5), device=group.primary)
        sharded = shard_rows(tensor, group)
        assert len(sharded.shards) == 4
        gathered = all_gather(sharded, group.primary)
        assert np.array_equal(gathered._np(), tensor._np())

    def test_shard_count_mismatch_rejected(self):
        group = LearnerGroup(3)
        tensor = _tensor((6, 2), device=group.primary)
        with pytest.raises(ValueError, match="shards for 3 learners"):
            ShardedTensor([tensor], group, tensor.shape)

    def test_scatter_ledger_accounting(self, ledger):
        group = LearnerGroup(4)
        tensor = _tensor((8, 4), device=group.primary)
        shard_rows(tensor, group, tag="scatter-test")
        records = [t for t in ledger.transfers() if t.tag == "scatter-test"]
        # Learner 0's shard is local: three transfers, each one shard.
        assert len(records) == 3
        assert all(t.nbytes == 2 * 4 * 4 for t in records)
        assert all(t.src == group.primary.name for t in records)


class TestAllGather:
    def test_ledger_accounting(self, ledger):
        group = LearnerGroup(4)
        tensor = _tensor((8, 4), device=group.primary)
        sharded = shard_rows(tensor, group)
        ledger.clear()
        all_gather(sharded, group.primary, tag="gather-test")
        records = [t for t in ledger.transfers() if t.tag == "gather-test"]
        assert len(records) == 3  # local shard moves nothing
        assert all(t.nbytes == 2 * 4 * 4 for t in records)
        assert all(t.dst == group.primary.name for t in records)


class TestAllReduceMean:
    def test_mean_values(self):
        group = LearnerGroup(3)
        replicas = [
            Tensor.from_numpy(
                np.full((2, 2), float(i), dtype=np.float32), device=dev
            )
            for i, dev in enumerate(group.devices)
        ]
        all_reduce_mean(replicas)
        for replica in replicas:
            assert np.allclose(replica._np(), 1.0)

    def test_rejects_empty_and_mismatched(self):
        group = LearnerGroup(2)
        with pytest.raises(ValueError, match="zero tensors"):
            all_reduce_mean([])
        a = _tensor((2, 2), device=group.devices[0])
        b = _tensor((3, 2), device=group.devices[1])
        with pytest.raises(ValueError, match="mismatched replica shapes"):
            all_reduce_mean([a, b])

    def test_view_replica_ledgers_logical_bytes(self, ledger):
        """Regression: reducing 2x8 row views of 8x8 storages must bill
        64 bytes per transfer, not the 256-byte storage footprint."""
        group = LearnerGroup(2)
        views = [
            _tensor((8, 8), seed=i, device=dev)[0:2]
            for i, dev in enumerate(group.devices)
        ]
        all_reduce_mean(views, tag="reduce-test")
        records = [t for t in ledger.transfers() if t.tag == "reduce-test"]
        assert records  # one exchange ledgered (ring approximation)
        assert all(t.nbytes == 2 * 8 * 4 for t in records)


class TestBroadcast:
    def test_replicates_to_every_device(self):
        group = LearnerGroup(3)
        tensor = _tensor((4, 4), device=group.primary)
        replicas = broadcast(tensor, group)
        assert len(replicas) == 3
        for replica, dev in zip(replicas, group.devices):
            assert replica.device == dev
            assert np.array_equal(replica._np(), tensor._np())

    def test_local_replica_aliases_by_default(self):
        group = LearnerGroup(2)
        tensor = _tensor((4, 4), device=group.primary)
        replicas = broadcast(tensor, group)
        assert replicas[0] is tensor  # data-parallel optimizer contract

    def test_copy_local_isolates_master(self):
        """With ``copy_local=True`` zeroing the local replica must leave
        the master weights intact -- the sharded rejoin path re-ships
        pristine masters and cannot tolerate aliasing."""
        group = LearnerGroup(2)
        tensor = _tensor((4, 4), device=group.primary)
        original = tensor._np().copy()
        replicas = broadcast(tensor, group, copy_local=True)
        assert replicas[0] is not tensor
        replicas[0].copy_(Tensor.from_numpy(np.zeros((4, 4), dtype=np.float32)))
        assert np.array_equal(tensor._np(), original)  # master untouched

    def test_local_copy_not_ledgered(self, ledger):
        group = LearnerGroup(3)
        tensor = _tensor((4, 4), device=group.primary)
        broadcast(tensor, group, tag="bcast-test", copy_local=True)
        records = [t for t in ledger.transfers() if t.tag == "bcast-test"]
        assert len(records) == 2  # peers only; the local copy moves no bytes
        assert all(t.nbytes == 4 * 4 * 4 for t in records)
