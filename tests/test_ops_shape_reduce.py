"""Forward values and gradients of shape ops and reductions."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.tensor import ops

from tests.gradcheck import check_gradients


def _arr(shape, seed=0, scale=1.0):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(
        np.float32
    )


class TestReductions:
    def test_sum_all(self):
        a = _arr((3, 4))
        assert rt.tensor(a).sum().item() == pytest.approx(a.sum(), rel=1e-5)

    def test_sum_dim(self):
        a = _arr((3, 4))
        out = rt.tensor(a).sum(dim=1)
        assert out.shape == (3,)
        assert np.allclose(out.numpy(), a.sum(axis=1), rtol=1e-5)

    def test_sum_keepdim(self):
        assert rt.tensor(_arr((3, 4))).sum(dim=0, keepdim=True).shape == (1, 4)

    def test_sum_negative_dim(self):
        a = _arr((3, 4))
        assert np.allclose(
            rt.tensor(a).sum(dim=-1).numpy(), a.sum(axis=-1), rtol=1e-5
        )

    def test_mean(self):
        a = _arr((3, 4))
        assert rt.tensor(a).mean().item() == pytest.approx(a.mean(), rel=1e-5)
        assert np.allclose(
            rt.tensor(a).mean(dim=0).numpy(), a.mean(axis=0), rtol=1e-5
        )

    def test_max_min(self):
        a = _arr((3, 4))
        assert rt.tensor(a).max().item() == pytest.approx(a.max())
        assert rt.tensor(a).min().item() == pytest.approx(a.min())
        assert np.allclose(rt.tensor(a).max(dim=1).numpy(), a.max(axis=1))

    def test_argmax_argmin(self):
        a = _arr((3, 4))
        assert rt.tensor(a).argmax().item() == a.argmax()
        assert np.array_equal(rt.tensor(a).argmax(dim=1).numpy(), a.argmax(axis=1))
        assert np.array_equal(rt.tensor(a).argmin(dim=0).numpy(), a.argmin(axis=0))

    def test_sum_grad(self):
        check_gradients(lambda ts: ts[0].sum(), [_arr((2, 3))])
        check_gradients(lambda ts: ts[0].sum(dim=1), [_arr((2, 3))])

    def test_mean_grad(self):
        check_gradients(lambda ts: ts[0].mean(), [_arr((2, 3))])
        check_gradients(lambda ts: ts[0].mean(dim=0, keepdim=True), [_arr((2, 3))])

    def test_max_grad_routes_to_argmax(self):
        a = rt.tensor([1.0, 5.0, 2.0], requires_grad=True)
        a.max().backward()
        assert np.array_equal(a.grad.numpy(), [0.0, 1.0, 0.0])

    def test_max_dim_grad(self):
        check_gradients(lambda ts: ts[0].max(dim=1), [_arr((3, 4))])

    def test_min_dim_grad(self):
        check_gradients(lambda ts: ts[0].min(dim=0), [_arr((3, 4))])


class TestShapeOpGradients:
    def test_view_grad(self):
        check_gradients(lambda ts: ts[0].view(6) * rt.tensor(_arr((6,), 9)), [_arr((2, 3))])

    def test_transpose_grad(self):
        check_gradients(
            lambda ts: ts[0].transpose(0, 1) @ ts[1], [_arr((3, 2)), _arr((3, 2), 1)]
        )

    def test_permute_grad(self):
        check_gradients(
            lambda ts: ts[0].permute(1, 2, 0).reshape(-1) * 2.0, [_arr((2, 3, 2))]
        )

    def test_expand_grad_accumulates(self):
        a = rt.tensor(_arr((1, 3)), requires_grad=True)
        a.expand(4, 3).sum().backward()
        assert np.allclose(a.grad.numpy(), np.full((1, 3), 4.0))

    def test_slice_grad_scatter(self):
        a = rt.tensor(_arr((4, 4)), requires_grad=True)
        a[1:3, ::2].sum().backward()
        expected = np.zeros((4, 4), dtype=np.float32)
        expected[1:3, ::2] = 1.0
        assert np.array_equal(a.grad.numpy(), expected)

    def test_cat_values_and_grad(self):
        a, b = _arr((2, 3)), _arr((3, 3), 1)
        out = ops.cat([rt.tensor(a), rt.tensor(b)], dim=0)
        assert np.allclose(out.numpy(), np.concatenate([a, b], axis=0))
        check_gradients(
            lambda ts: ops.cat([ts[0], ts[1]], dim=0), [a, b]
        )

    def test_cat_dim1(self):
        a, b = _arr((2, 3)), _arr((2, 2), 1)
        out = ops.cat([rt.tensor(a), rt.tensor(b)], dim=1)
        assert out.shape == (2, 5)

    def test_stack(self):
        a, b = _arr((2, 3)), _arr((2, 3), 1)
        out = ops.stack([rt.tensor(a), rt.tensor(b)], dim=0)
        assert out.shape == (2, 2, 3)
        assert np.allclose(out.numpy(), np.stack([a, b]))

    def test_split_roundtrip(self):
        t = rt.tensor(_arr((7, 2)))
        chunks = ops.split(t, 3, dim=0)
        assert [c.shape[0] for c in chunks] == [3, 3, 1]
        rebuilt = ops.cat(chunks, dim=0)
        assert np.array_equal(rebuilt.numpy(), t.numpy())

    def test_contiguous_grad(self):
        check_gradients(
            lambda ts: ts[0].transpose(0, 1).contiguous() * 3.0, [_arr((2, 3))]
        )

    def test_view_shape_validation(self):
        with pytest.raises(ValueError):
            rt.zeros(6).view(4)
        with pytest.raises(ValueError):
            rt.zeros(6).view(-1, -1)

    def test_grad_through_view_mutation_chain(self):
        # Gradient flows correctly through nested views.
        a = rt.tensor(_arr((2, 2, 2)), requires_grad=True)
        out = a.view(8).view(2, 4).transpose(0, 1).reshape(-1)
        (out * out).sum().backward()
        assert np.allclose(a.grad.numpy(), 2 * a.numpy(), rtol=1e-5)
