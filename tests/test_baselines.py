"""Tests for the baseline compressors (RTN, GPTQ, AWQ, SmoothQuant, QAT)."""

import numpy as np
import pytest

import repro.tensor as rt
import repro.nn as nn
from repro.baselines import (
    FakeQuantSTE,
    apply_qat,
    collect_calibration,
    fake_quantize,
    freeze_qat,
    gptq_quantize_weight,
    quantization_mse,
    quantize_model_awq,
    quantize_model_gptq,
    quantize_model_rtn,
    quantize_model_smoothquant,
    quantize_uniform,
    smoothquant_scales,
)
from repro.baselines.awq import awq_scale_search
from repro.baselines.calibration import LayerCalibration


def _weight(shape=(8, 16), seed=0, scale=0.1):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(
        np.float32
    )


class TestQuantGrids:
    def test_symmetric_codes_within_range(self):
        q = quantize_uniform(_weight(), bits=4, symmetric=True)
        assert q.codes.max() <= 7 and q.codes.min() >= -7

    def test_asymmetric_codes_within_range(self):
        q = quantize_uniform(_weight(), bits=4, symmetric=False)
        assert q.codes.max() <= 15 and q.codes.min() >= 0

    def test_dequantize_error_bounded_by_half_step(self):
        w = _weight()
        q = quantize_uniform(w, bits=8, symmetric=False)
        err = np.abs(q.dequantize().reshape(w.shape) - w)
        assert np.all(err <= q.scales.max() / 2 + 1e-7)

    def test_per_channel_beats_per_tensor(self):
        rng = np.random.default_rng(0)
        # Rows at wildly different scales: per-channel must win.
        w = rng.standard_normal((4, 64)).astype(np.float32)
        w *= np.array([0.001, 0.01, 0.1, 1.0], dtype=np.float32)[:, None]
        per_channel = fake_quantize(w, 4, per_channel=True)
        per_tensor = fake_quantize(w, 4, per_channel=False)
        assert quantization_mse(w, per_channel) < quantization_mse(w, per_tensor)

    def test_group_wise_beats_per_channel_on_structured_rows(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((4, 64)).astype(np.float32)
        w[:, 32:] *= 100.0  # two very different column groups
        grouped = fake_quantize(w, 4, group_size=32)
        per_channel = fake_quantize(w, 4, per_channel=True)
        assert quantization_mse(w, grouped) < quantization_mse(w, per_channel)

    def test_group_size_must_divide(self):
        with pytest.raises(ValueError):
            quantize_uniform(_weight((4, 10)), bits=4, group_size=3)

    def test_more_bits_less_error(self):
        w = _weight()
        errors = [
            quantization_mse(w, fake_quantize(w, bits)) for bits in (2, 3, 4, 8)
        ]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            quantize_uniform(np.zeros(8, dtype=np.float32), bits=4)


def _calibrated_layer(in_f=32, out_f=16, n=256, seed=0):
    """A Linear plus calibration stats from correlated inputs."""
    rng = np.random.default_rng(seed)
    layer = nn.Linear(in_f, out_f, bias=False, rng=rng)
    base = rng.standard_normal((n, 4)).astype(np.float64)
    mix = rng.standard_normal((4, in_f)).astype(np.float64)
    x = base @ mix + 0.05 * rng.standard_normal((n, in_f))
    cal = LayerCalibration(in_features=in_f)
    cal.update(x)
    return layer, cal, x.astype(np.float32)


class TestGPTQ:
    def test_gptq_beats_rtn_on_correlated_inputs(self):
        """Error compensation must reduce *output* error vs plain rounding."""
        layer, cal, x = _calibrated_layer()
        w = layer.weight.numpy()
        gptq_w = gptq_quantize_weight(w, cal.hessian, bits=3, group_size=None)
        rtn_w = fake_quantize(w, 3, symmetric=False, per_channel=True)
        ref = x @ w.T
        gptq_err = np.mean((x @ gptq_w.T - ref) ** 2)
        rtn_err = np.mean((x @ rtn_w.T - ref) ** 2)
        assert gptq_err < rtn_err

    def test_gptq_output_on_grid_per_group(self):
        layer, cal, _ = _calibrated_layer()
        w = layer.weight.numpy()
        gptq_w = gptq_quantize_weight(w, cal.hessian, bits=3, group_size=16)
        # Each row x group has at most 2^3 distinct values.
        for row in gptq_w:
            for g in range(0, 32, 16):
                assert len(np.unique(row[g : g + 16])) <= 8

    def test_dead_columns_handled(self):
        layer, cal, _ = _calibrated_layer()
        h = cal.hessian.copy()
        h[0, :] = 0.0
        h[:, 0] = 0.0
        out = gptq_quantize_weight(layer.weight.numpy(), h, bits=3)
        assert np.all(np.isfinite(out))
        assert np.all(out[:, 0] == 0.0)

    def test_model_level_gptq(self, world, tokenizer):
        from repro.data import corpus_batches, generate_corpus

        model = nn.Transformer(
            vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2,
            hidden_dim=32, max_seq_len=16,
        )
        model.to("gpu")
        corpus = generate_corpus(world, 64, seed=5)
        batches = list(corpus_batches(corpus, tokenizer, 8, rt.GPU, seed=6))
        report = quantize_model_gptq(model, batches, bits=4)
        assert len(report.layer_mse) == 8
        assert all(np.isfinite(v) for v in report.layer_mse.values())


class TestAWQ:
    def test_scale_search_reduces_output_error(self):
        layer, cal, x = _calibrated_layer(seed=3)
        w = layer.weight.numpy()
        scales, alpha, err = awq_scale_search(w, cal, bits=3, group_size=None)
        plain = fake_quantize(w, 3, symmetric=True)
        plain_err = np.mean((x @ plain.T - x @ w.T) ** 2)
        assert err <= plain_err + 1e-12
        assert scales.shape == (32,)

    def test_alpha_zero_is_identity_scaling(self):
        layer, cal, _ = _calibrated_layer()
        scales, alpha, _ = awq_scale_search(
            layer.weight.numpy(), cal, bits=3, group_size=None, alphas=(0.0,)
        )
        assert np.allclose(scales, scales[0])  # constant scaling

    def test_model_level_awq(self, world, tokenizer):
        from repro.data import corpus_batches, generate_corpus

        model = nn.Transformer(
            vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2,
            hidden_dim=32, max_seq_len=16,
        )
        model.to("gpu")
        corpus = generate_corpus(world, 64, seed=7)
        batches = list(corpus_batches(corpus, tokenizer, 8, rt.GPU, seed=8))
        report = quantize_model_awq(model, batches, bits=4)
        assert len(report.layer_alpha) == 8


class TestRTN:
    def test_quantizes_in_place(self):
        model = nn.Transformer(
            vocab_size=20, dim=16, n_layers=1, n_heads=2, hidden_dim=32
        )
        before = model.lm_head.weight.numpy().copy()
        report = quantize_model_rtn(model, bits=3, per_channel=False)
        after = model.lm_head.weight.numpy()
        assert not np.array_equal(before, after)
        assert len(np.unique(after)) <= 2**3 * 2  # per-tensor symmetric grid
        assert len(report.layer_mse) == 8

    def test_skip_names(self):
        model = nn.Transformer(
            vocab_size=20, dim=16, n_layers=1, n_heads=2, hidden_dim=32
        )
        before = model.lm_head.weight.numpy().copy()
        quantize_model_rtn(model, bits=3, skip_names=("lm_head",))
        assert np.array_equal(before, model.lm_head.weight.numpy())

    def test_no_linears_raises(self):
        with pytest.raises(ValueError):
            quantize_model_rtn(nn.RMSNorm(4), bits=3)


class TestSmoothQuant:
    def test_scales_balance_act_and_weight(self):
        layer, cal, _ = _calibrated_layer()
        scales = smoothquant_scales(layer.weight.numpy(), cal, alpha=0.5)
        assert scales.shape == (32,)
        assert np.all(scales > 0)

    def test_model_level(self, world, tokenizer):
        from repro.data import corpus_batches, generate_corpus

        model = nn.Transformer(
            vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2,
            hidden_dim=32, max_seq_len=16,
        )
        model.to("gpu")
        corpus = generate_corpus(world, 64, seed=9)
        batches = list(corpus_batches(corpus, tokenizer, 8, rt.GPU, seed=10))
        report = quantize_model_smoothquant(model, batches, bits=8)
        assert len(report.layers) == 8


class TestLLMQAT:
    def test_ste_gradient_is_identity(self):
        w = rt.Tensor.from_numpy(_weight(), device="gpu", requires_grad=True)
        out = FakeQuantSTE.apply(w, 4, True)
        out.sum().backward()
        assert np.allclose(w.grad.numpy(), np.ones_like(w.numpy()))

    def test_forward_projects_to_grid(self):
        w = rt.Tensor.from_numpy(_weight(), device="gpu")
        out = FakeQuantSTE.apply(w, 3, True)
        for row in out.numpy():
            assert len(np.unique(row)) <= 2**3

    def test_apply_qat_wraps_linears(self):
        model = nn.Transformer(
            vocab_size=20, dim=16, n_layers=1, n_heads=2, hidden_dim=32
        )
        wrapped = apply_qat(model, bits=4)
        assert len(wrapped) == 8
        tokens = rt.tensor(np.array([[1, 2, 3]]))
        assert model(tokens).shape == (1, 3, 20)

    def test_qat_training_reduces_quantized_loss(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(8, 8, rng=rng)
        # Direct QAT on a single layer:
        from repro.baselines.llm_qat import QATLinear

        wrapped = QATLinear(layer, bits=3)
        x = rt.tensor(rng.standard_normal((16, 8)).astype(np.float32))
        target = rt.tensor(rng.standard_normal((16, 8)).astype(np.float32))
        losses = []
        for _ in range(40):
            diff = wrapped(x) - target
            loss = (diff * diff).sum()
            layer.zero_grad()
            loss.backward()
            for p in layer.parameters():
                p.copy_(p._compute() - 0.002 * p.grad._compute())
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8

    def test_freeze_bakes_weights(self):
        model = nn.Transformer(
            vocab_size=20, dim=16, n_layers=1, n_heads=2, hidden_dim=32
        )
        wrapped = apply_qat(model, bits=3)
        freeze_qat(wrapped)
        for qat in wrapped.values():
            w = qat.inner.weight.numpy()
            for row in w:
                assert len(np.unique(row)) <= 2**3


class TestCalibration:
    def test_hessian_accumulates(self):
        cal = LayerCalibration(in_features=4)
        x = np.eye(4)
        cal.update(x)
        assert np.allclose(cal.hessian, 2 * np.eye(4))
        cal.update(x)
        assert np.allclose(cal.hessian, 4 * np.eye(4))

    def test_abs_mean_running_average(self):
        cal = LayerCalibration(in_features=2)
        cal.update(np.array([[1.0, -2.0]]))
        cal.update(np.array([[3.0, 0.0]]))
        assert np.allclose(cal.abs_mean, [2.0, 1.0])

    def test_sample_budget(self):
        cal = LayerCalibration(in_features=2, max_samples=10)
        cal.update(np.ones((8, 2)))
        cal.update(np.ones((8, 2)))
        assert cal.stacked_samples().shape[0] == 10

    def test_collect_calibration_restores_forward(self, world, tokenizer):
        from repro.data import corpus_batches, generate_corpus

        model = nn.Transformer(
            vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2,
            hidden_dim=32, max_seq_len=16,
        )
        model.to("gpu")
        original_forward = model.lm_head.forward
        corpus = generate_corpus(world, 32, seed=11)
        batches = list(corpus_batches(corpus, tokenizer, 8, rt.GPU, seed=12))
        records = collect_calibration(model, batches)
        assert model.lm_head.forward == original_forward
        assert "lm_head" in records
        assert records["lm_head"].n_samples > 0
