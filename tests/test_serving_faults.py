"""Chaos-hardened serving: supervisor, breaker, drain, fault injection.

The load-bearing guarantees under test:

- a decode step that raises fails only that batch's requests, with a
  typed :class:`StepFailed` delivered *promptly* through the future --
  never a stranded ``result()`` (regression: on the seed, an exception
  escaping a step killed the scheduler thread silently);
- ``stop()`` terminates within its join deadline and escalates on a hung
  step instead of deadlocking (regression: the seed joined forever);
- every injected fault -- kernel error, corrupt tile, hang, delay,
  transient -- is recovered from with *bit-identical* completed tokens
  and an audit trail in the fault log;
- the per-layer circuit breaker trips exactly the failing layer to the
  dense path and re-promotes it after probation;
- ``stop(drain=True)`` finishes in-flight work; a dead loop refuses
  admission; ``ServingConfig`` round-trips but refuses to serialize an
  armed fault plan.
"""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np
import pytest

import repro.tensor as rt
from repro.core import DKMConfig, ModelCompressor
from repro.core.faults import FaultSpec, RobustnessWarning
from repro.llm import MICRO, build_model, generate
from repro.memory.traffic import TrafficLedger
from repro.serving import (
    AdmissionError,
    BreakerBoard,
    CorruptTileError,
    PaletteKernelError,
    PaletteServer,
    ServerClosed,
    ServerRequest,
    ServingConfig,
    ServingFaultInjector,
    ServingFaultPlan,
    ServingFaultSpec,
    StepFailed,
    TileCache,
    TransientStepError,
    get_default_serving_config,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN

MAX_NEW = 5

PROMPTS = [
    "alice lives in",
    "the capital of",
    "bob",
    "carol works as a",
]


@pytest.fixture(scope="module")
def served_model(tokenizer, trained_state):
    """A trained, compressed MICRO model shared by this module's tests.

    Tests must not mutate weights; toggling the palette path is fine
    (every ``PaletteServer.close`` restores dense).
    """
    model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=0)
    model.to(rt.GPU)
    for name, param in model.state_dict().items():
        param.copy_(trained_state[name])
    ModelCompressor(DKMConfig(bits=4)).compress(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def expected_texts(served_model, tokenizer):
    """Undisturbed greedy completions (dense path) -- the identity oracle."""
    return {
        p: generate(served_model, tokenizer, p, max_new_tokens=MAX_NEW)
        for p in PROMPTS
    }


def _config(**overrides) -> ServingConfig:
    defaults = dict(max_new_tokens=MAX_NEW, poll_interval_s=0.002)
    defaults.update(overrides)
    return get_default_serving_config(**defaults)


def _serve_all(server, prompts=PROMPTS, timeout=30.0):
    requests = [server.submit(p) for p in prompts]
    return [r.result(timeout=timeout) for r in requests]


class TestServingFaultPlanSpec:
    def test_valid_kinds_accepted(self):
        for kind in ("kernel_error", "corrupt_tile", "hang_step",
                     "delay_step", "transient_step"):
            spec = ServingFaultSpec(kind=kind, sweep=2)
            assert spec.step == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ServingFaultSpec(kind="disk_full", sweep=1)

    def test_core_spec_rejects_serving_kinds(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="kernel_error", sweep=1)

    def test_single_builds_serving_spec(self):
        plan = ServingFaultPlan.single("hang_step", sweep=3, seconds=1.5)
        (spec,) = plan.specs
        assert isinstance(spec, ServingFaultSpec)
        assert spec.kind == "hang_step"
        assert spec.seconds == 1.5

    def test_injector_from_plan_none(self):
        assert ServingFaultInjector.from_plan(None) is None

    def test_seeded_layer_pick_deterministic(self):
        plan = ServingFaultPlan(
            specs=(ServingFaultSpec(kind="kernel_error", sweep=1),), seed=7
        )
        names = [f"blocks.{i}.mlp" for i in range(6)]
        picks = set()
        for _ in range(3):
            injector = ServingFaultInjector(plan)
            injector.arm(names)
            injector.begin_step()
            with pytest.raises(PaletteKernelError) as excinfo:
                for name in names:
                    injector.maybe_kernel_error(name)
            picks.add(excinfo.value.layer)
        assert len(picks) == 1
        assert picks.pop() in names

    def test_fires_at_first_opportunity_at_or_after_step(self):
        plan = ServingFaultPlan.single("transient_step", sweep=3)
        injector = ServingFaultInjector(plan)
        injector.arm([])
        injector.begin_step()
        injector.maybe_transient()  # step 1: armed for >= 3, no fire
        injector.begin_step()
        injector.maybe_transient()
        injector.begin_step()
        with pytest.raises(TransientStepError):
            injector.maybe_transient()
        injector.maybe_transient()  # times=1 consumed
        assert len(injector.log.events) == 1


class TestServerRequestIdempotent:
    def test_first_complete_wins(self):
        request = ServerRequest("p", 4)
        assert request.complete("done") is True
        assert request.fail(RuntimeError("late")) is False
        assert request.complete("again") is False
        assert request.result(timeout=1) == "done"
        assert request.ok

    def test_first_fail_wins(self):
        request = ServerRequest("p", 4)
        error = StepFailed("boom")
        assert request.fail(error) is True
        assert request.complete("late") is False
        with pytest.raises(StepFailed):
            request.result(timeout=1)
        assert request.error is error


class TestTileCacheDigest:
    def _tile(self):
        return np.arange(12, dtype=np.float32).reshape(3, 4)

    def test_roundtrip_clean(self):
        cache = TileCache()
        cache.put(("layer", 0, 0), self._tile())
        got = cache.get(("layer", 0, 0))
        np.testing.assert_array_equal(got, self._tile())
        assert cache.stats.corruptions == 0

    def test_corrupt_one_poisons_and_get_detects(self):
        cache = TileCache()
        cache.put(("layer", 0, 0), self._tile())
        assert cache.corrupt_one(("layer",)) is True
        with pytest.raises(CorruptTileError) as excinfo:
            cache.get(("layer", 0, 0))
        assert excinfo.value.layer == "layer"
        assert cache.stats.corruptions == 1
        # The poisoned entry was dropped: next get is a clean miss.
        assert cache.get(("layer", 0, 0)) is None
        assert cache.resident_bytes() == 0

    def test_corrupt_one_no_match(self):
        cache = TileCache()
        cache.put(("layer", 0, 0), self._tile())
        assert cache.corrupt_one(("other",)) is False

    def test_digest_checks_off_serves_rotten_tile(self):
        cache = TileCache(digest_checks=False)
        cache.put(("layer", 0, 0), self._tile())
        assert cache.corrupt_one(("layer",)) is True
        got = cache.get(("layer", 0, 0))  # undetected rot, by design
        assert got is not None
        assert cache.stats.corruptions == 0


class TestStepCrashBoundary:
    """Regression (seed bug): a step exception must not strand futures."""

    def test_step_exception_fails_batch_promptly(
        self, served_model, tokenizer, expected_texts, monkeypatch
    ):
        calls = {"n": 0}
        import repro.serving.batcher as batcher_mod

        real = batcher_mod.batched_last_logits

        def exploding(model, windows, device=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("simulated forward crash")
            return real(model, windows, device=device)

        monkeypatch.setattr(batcher_mod, "batched_last_logits", exploding)
        with PaletteServer(served_model, tokenizer, _config()) as server:
            request = server.submit(PROMPTS[0])
            # On the seed this raised TimeoutError: the scheduler thread
            # died and the future was never resolved.
            with pytest.raises(StepFailed) as excinfo:
                request.result(timeout=5)
            assert isinstance(excinfo.value.cause, RuntimeError)
            assert server.running  # crash boundary: the loop survived
            # and the server still serves correct tokens afterwards.
            text = server.submit(PROMPTS[1]).result(timeout=30)
            assert text == expected_texts[PROMPTS[1]]
            assert server.stats().step_failures >= 1


class TestStopJoinDeadline:
    """Regression (seed bug): stop() must not deadlock on a hung step."""

    def test_stop_escalates_past_hung_step(
        self, served_model, tokenizer, monkeypatch
    ):
        release = threading.Event()
        entered = threading.Event()
        import repro.serving.batcher as batcher_mod

        real = batcher_mod.batched_last_logits

        def wedged(model, windows, device=None):
            entered.set()
            release.wait(timeout=60)
            return real(model, windows, device=device)

        monkeypatch.setattr(batcher_mod, "batched_last_logits", wedged)
        server = PaletteServer(
            served_model, tokenizer, _config(join_timeout_s=0.3)
        )
        try:
            server.start()
            request = server.submit(PROMPTS[0])
            assert entered.wait(timeout=10)
            begun = time.monotonic()
            with pytest.warns(RobustnessWarning):
                # On the seed this joined without a timeout: deadlock.
                server.stop()
            assert time.monotonic() - begun < 5.0
            with pytest.raises(ServerClosed):
                request.result(timeout=5)
        finally:
            release.set()
            server.close()


class TestInjectedFaults:
    def test_transient_step_retried_to_identical_tokens(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single("transient_step", sweep=1),
            max_step_retries=2,
            step_retry_backoff_s=0.001,
        )
        with PaletteServer(served_model, tokenizer, config) as server:
            texts = _serve_all(server)
            assert texts == [expected_texts[p] for p in PROMPTS]
            report = server.stats()
            assert report.step_retries >= 1
            assert report.step_failures == 0
            events = server.fault_injector.log.events
            assert [e.kind for e in events] == ["transient_step"]

    def test_transient_exhausts_retries_to_step_failed(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single(
                "transient_step", sweep=1, times=2
            ),
            max_step_retries=1,
            step_retry_backoff_s=0.001,
        )
        with PaletteServer(served_model, tokenizer, config) as server:
            request = server.submit(PROMPTS[0])
            with pytest.raises(StepFailed) as excinfo:
                request.result(timeout=10)
            assert isinstance(excinfo.value.cause, TransientStepError)
            # The loop survived; once the plan is spent, service resumes.
            text = server.submit(PROMPTS[1]).result(timeout=30)
            assert text == expected_texts[PROMPTS[1]]

    def test_delay_step_completes_identically(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single(
                "delay_step", sweep=2, seconds=0.05
            ),
        )
        with PaletteServer(served_model, tokenizer, config) as server:
            texts = _serve_all(server)
            assert texts == [expected_texts[p] for p in PROMPTS]
            events = server.fault_injector.log.events
            assert [e.kind for e in events] == ["delay_step"]

    def test_kernel_error_trips_breaker_identical_tokens(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single(
                "kernel_error", sweep=1, times=2
            ),
            breaker_threshold=2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            with PaletteServer(served_model, tokenizer, config) as server:
                texts = _serve_all(server)
                assert texts == [expected_texts[p] for p in PROMPTS]
                report = server.stats()
                assert report.breaker_trips == 1
                assert report.degrade_bytes > 0
                events = server.fault_injector.log.events
                assert {e.kind for e in events} == {"kernel_error"}
                assert len(events) == 2
                tripped = events[0].layer
                health = server.health()
                assert health.breakers[tripped].state == OPEN
                module = server._module_for(tripped)
                assert module is not None and module.eval_path == "dense"

    def test_corrupt_tile_detected_and_recovered(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single("corrupt_tile", sweep=2),
        )
        with PaletteServer(served_model, tokenizer, config) as server:
            texts = _serve_all(server)
            assert texts == [expected_texts[p] for p in PROMPTS]
            events = server.fault_injector.log.events
            assert [e.kind for e in events] == ["corrupt_tile"]
            assert server.tile_cache.stats.corruptions >= 1
            # One digest failure is below the default threshold: counted,
            # not tripped.
            assert server.stats().breaker_trips == 0

    def test_hang_step_watchdog_respawns_loop(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single(
                "hang_step", sweep=1, seconds=30.0
            ),
            step_timeout_s=0.15,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            with PaletteServer(served_model, tokenizer, config) as server:
                hung = server.submit(PROMPTS[0])
                with pytest.raises(StepFailed) as excinfo:
                    hung.result(timeout=10)
                assert "step_timeout_s" in str(excinfo.value)
                # The respawned loop serves, and the spent hang spec does
                # not re-fire.
                text = server.submit(PROMPTS[1]).result(timeout=30)
                assert text == expected_texts[PROMPTS[1]]
                report = server.stats()
                assert report.watchdog_kills >= 1
                assert report.loop_respawns >= 1
                health = server.health()
                assert health.respawns >= 1
                assert health.generation >= 2

    def test_respawn_budget_exhaustion_kills_server(
        self, served_model, tokenizer
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single(
                "hang_step", sweep=1, times=3, seconds=30.0
            ),
            step_timeout_s=0.1,
            max_loop_respawns=0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            server = PaletteServer(served_model, tokenizer, config)
            try:
                server.start()
                hung = server.submit(PROMPTS[0])
                with pytest.raises(StepFailed):
                    hung.result(timeout=10)
                deadline = time.monotonic() + 5
                while not server.health().dead and time.monotonic() < deadline:
                    time.sleep(0.01)
                health = server.health()
                assert health.dead
                assert not health.accepting
                with pytest.raises(ServerClosed):
                    server.submit(PROMPTS[1])
                begun = time.monotonic()
                server.stop()
                assert time.monotonic() - begun < 10.0
            finally:
                server.close()


class TestBreakerBoard:
    def test_counts_below_threshold(self):
        board = BreakerBoard(threshold=3, probation_steps=4)
        assert board.note_failure("a") == "count"
        assert board.note_failure("a") == "count"
        assert board.states()["a"].consecutive_failures == 2

    def test_clean_step_resets_closed_counter(self):
        board = BreakerBoard(threshold=3, probation_steps=4)
        board.note_failure("a")
        board.note_clean_step()
        assert board.states()["a"].consecutive_failures == 0

    def test_trip_at_threshold(self):
        board = BreakerBoard(threshold=2, probation_steps=3)
        board.note_failure("a")
        assert board.note_failure("a") == "trip"
        snap = board.states()["a"]
        assert snap.state == OPEN
        assert snap.trips == 1
        assert board.open_layers() == ["a"]

    def test_probation_promotes_then_closes(self):
        board = BreakerBoard(threshold=1, probation_steps=2)
        assert board.note_failure("a") == "trip"
        assert board.note_clean_step() == []
        assert board.note_clean_step() == ["a"]
        assert board.states()["a"].state == HALF_OPEN
        assert board.note_clean_step() == []
        snap = board.states()["a"]
        assert snap.state == CLOSED
        assert snap.repromotions == 1

    def test_half_open_failure_retrips_with_doubled_probation(self):
        board = BreakerBoard(threshold=1, probation_steps=2)
        board.note_failure("a")
        board.note_clean_step()
        board.note_clean_step()  # promoted to half-open
        assert board.note_failure("a") == "retrip"
        assert board.states()["a"].probation_remaining == 4

    def test_probation_doubling_caps_at_8x(self):
        board = BreakerBoard(threshold=1, probation_steps=2)
        for _ in range(6):  # flap: trip, serve probation, fail the probe
            action = board.note_failure("a")
            assert action in ("trip", "retrip")
            while board.states()["a"].state == OPEN:
                board.note_clean_step()
        board.note_failure("a")
        assert board.states()["a"].probation_remaining <= 16

    def test_failure_while_open_is_inert(self):
        board = BreakerBoard(threshold=1, probation_steps=8)
        board.note_failure("a")
        assert board.note_failure("a") == "open"
        assert board.states()["a"].trips == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerBoard(threshold=0, probation_steps=1)
        with pytest.raises(ValueError):
            BreakerBoard(threshold=1, probation_steps=0)


class TestBreakerRepromotion:
    def test_tripped_layer_repromoted_after_probation(
        self, served_model, tokenizer, expected_texts
    ):
        config = _config(
            fault_plan=ServingFaultPlan.single("kernel_error", sweep=1),
            breaker_threshold=1,
            breaker_probation_steps=2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            with PaletteServer(served_model, tokenizer, config) as server:
                texts = _serve_all(server)
                assert texts == [expected_texts[p] for p in PROMPTS]
                tripped = server.fault_injector.log.events[0].layer
                report = server.stats()
                assert report.breaker_trips == 1
                # MAX_NEW * len(PROMPTS) steps comfortably cover a
                # 2-step probation plus the closing probe step.
                assert report.breaker_repromotions == 1
                health = server.health()
                assert health.breakers[tripped].state == CLOSED
                module = server._module_for(tripped)
                assert module is not None and module.eval_path == "palette"


class TestDrainAndHealth:
    def test_drain_completes_inflight_work(
        self, served_model, tokenizer, expected_texts
    ):
        with PaletteServer(served_model, tokenizer, _config()) as server:
            requests = [server.submit(p) for p in PROMPTS]
            server.stop(drain=True)
            texts = [r.result(timeout=1) for r in requests]
            assert texts == [expected_texts[p] for p in PROMPTS]
            assert len(server.queue) == 0
            assert server.stats().completed == len(PROMPTS)

    def test_draining_server_refuses_admission(
        self, served_model, tokenizer
    ):
        server = PaletteServer(served_model, tokenizer, _config())
        try:
            server.start()
            server.supervisor.start_draining()
            with pytest.raises(ServerClosed):
                server.submit(PROMPTS[0])
        finally:
            server.close()

    def test_health_snapshot_shape(self, served_model, tokenizer):
        server = PaletteServer(served_model, tokenizer, _config())
        health = server.health()
        assert not health.running and not health.accepting
        try:
            server.start()
            health = server.health()
            assert health.running and health.accepting
            assert not health.dead and not health.stalled
            assert health.generation == 1
            assert health.queue_depth == 0
            payload = health.to_dict()
            assert payload["running"] is True
            assert isinstance(payload["breakers"], dict)
        finally:
            server.close()
        assert not server.health().running

    def test_submit_on_stopped_server_raises(self, served_model, tokenizer):
        server = PaletteServer(served_model, tokenizer, _config())
        server.start()
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(PROMPTS[0])


class TestServingConfigContract:
    def test_round_trip_includes_robustness_knobs(self):
        config = _config(
            step_timeout_s=1.5,
            max_step_retries=3,
            breaker_threshold=4,
            breaker_probation_steps=9,
            tile_digest_checks=False,
            join_timeout_s=2.0,
            drain_timeout_s=3.0,
        )
        payload = config.to_dict()
        assert "fault_plan" not in payload
        assert payload["step_timeout_s"] == 1.5
        assert payload["breaker_threshold"] == 4
        assert ServingConfig.from_dict(payload) == config

    def test_armed_fault_plan_refuses_to_serialize(self):
        config = _config(
            fault_plan=ServingFaultPlan.single("delay_step", sweep=1)
        )
        with pytest.raises(ValueError, match="disarm"):
            config.to_dict()

    def test_fault_plan_type_validated(self):
        with pytest.raises(ValueError, match="fault_plan"):
            _config(fault_plan="hang_step")

    def test_knob_validation(self):
        for bad in (
            dict(step_timeout_s=0.0),
            dict(max_step_retries=-1),
            dict(step_retry_backoff_s=-0.1),
            dict(max_loop_respawns=-1),
            dict(join_timeout_s=0.0),
            dict(drain_timeout_s=0.0),
            dict(breaker_threshold=0),
            dict(breaker_probation_steps=0),
        ):
            with pytest.raises(ValueError):
                _config(**bad)


class TestConcurrentChaos:
    def test_concurrent_clients_with_faults_no_stranded_futures(
        self, served_model, tokenizer, expected_texts
    ):
        plan = ServingFaultPlan(
            specs=(
                ServingFaultSpec(kind="transient_step", sweep=2),
                ServingFaultSpec(kind="corrupt_tile", sweep=3),
                ServingFaultSpec(kind="delay_step", sweep=4, seconds=0.02),
            )
        )
        config = _config(
            fault_plan=plan,
            max_step_retries=2,
            step_retry_backoff_s=0.001,
        )
        results: dict[int, str | BaseException] = {}
        lock = threading.Lock()

        def client(idx: int, server: PaletteServer) -> None:
            prompt = PROMPTS[idx % len(PROMPTS)]
            try:
                text = server.submit(prompt).result(timeout=30)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                with lock:
                    results[idx] = exc
            else:
                with lock:
                    results[idx] = text

        with PaletteServer(served_model, tokenizer, config) as server:
            threads = [
                threading.Thread(target=client, args=(i, server))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "client stranded"
            injector = server.fault_injector
            assert {e.kind for e in injector.log.events} == {
                "transient_step",
                "corrupt_tile",
                "delay_step",
            }
        assert len(results) == 8
        for idx, outcome in results.items():
            assert not isinstance(outcome, BaseException), outcome
            assert outcome == expected_texts[PROMPTS[idx % len(PROMPTS)]]


class TestLedgerIsolation:
    def test_degrade_bytes_excluded_from_traffic_split(
        self, served_model, tokenizer
    ):
        ledger = TrafficLedger()
        config = _config(
            fault_plan=ServingFaultPlan.single("kernel_error", sweep=1),
            breaker_threshold=1,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RobustnessWarning)
            with PaletteServer(
                served_model, tokenizer, config, ledger=ledger
            ) as server:
                _serve_all(server, PROMPTS[:2])
                report = server.stats()
        assert report.degrade_bytes > 0
        degrade_total = sum(
            t.nbytes for t in ledger.transfers() if t.tag == "serve:degrade"
        )
        assert report.degrade_bytes == degrade_total
        assert report.weight_bytes_read > 0
        # Weight/activation tallies must not double-count the audit trail.
        serve_total = sum(
            t.nbytes
            for t in ledger.transfers()
            if t.tag.startswith("serve:") and t.tag != "serve:degrade"
        )
        assert report.weight_bytes_read + report.activation_bytes == serve_total


class TestChaosBenchHelpers:
    """Unit tests for the chaos benchmark's pure pieces.

    The end-to-end matrix runs in ``benchmarks/bench_serving_faults.py``
    (CI smoke); these cover the plan/config factories and the gate
    arithmetic in ``to_json_dict`` without training a model.
    """

    def _row(self, **overrides):
        from repro.bench.serving_faults import ChaosScenarioRow

        base = dict(
            scenario="transient_step-c1",
            kind="transient_step",
            clients=1,
            submitted=4,
            completed=4,
            client_retries=0,
            tokens_identical=True,
            stranded=False,
            stop_s=0.01,
            wall_s=0.5,
        )
        base.update(overrides)
        return ChaosScenarioRow(**base)

    def test_plan_for_every_kind_is_armed_and_single_spec(self):
        from repro.bench.serving_faults import CHAOS_KINDS, _plan_for

        for kind in CHAOS_KINDS:
            plan = _plan_for(kind, seed=3)
            assert len(plan.specs) == 1
            assert plan.specs[0].kind == kind
            assert plan.seed == 3

    def test_plan_for_unknown_kind_raises(self):
        from repro.bench.serving_faults import _plan_for

        with pytest.raises(ValueError, match="unknown chaos kind"):
            _plan_for("segfault", seed=0)

    def test_config_for_arms_watchdog_only_for_hangs(self):
        from repro.bench.serving_faults import _config_for, _plan_for

        hang = _config_for("hang_step", _plan_for("hang_step", 0), 4)
        assert hang.step_timeout_s is not None
        assert hang.fault_plan is not None
        quiet = _config_for("delay_step", _plan_for("delay_step", 0), 4)
        assert quiet.step_timeout_s is None
        # The kernel cell pins threshold=1 so one fire must trip.
        kernel = _config_for("kernel_error", _plan_for("kernel_error", 0), 4)
        assert kernel.breaker_threshold == 1

    def test_to_json_dict_gates_reflect_rows(self):
        from repro.bench.serving_faults import ChaosBenchResult

        good = ChaosBenchResult(rows=[self._row()])
        payload = good.to_json_dict()
        assert payload["benchmark"] == "serving_faults"
        assert payload["tokens_identical"]
        assert payload["faults_reconciled"]
        assert payload["no_stranded_futures"]
        assert payload["shutdown_bounded"]

        bad = ChaosBenchResult(
            rows=[
                self._row(tokens_identical=False),
                self._row(scenario="hang_step-c4", stranded=True),
                self._row(scenario="kernel_error-c1", unfired_specs=1),
                self._row(scenario="corrupt_tile-c1", stop_s=1e9),
            ]
        )
        payload = bad.to_json_dict()
        assert not payload["tokens_identical"]
        assert not payload["faults_reconciled"]
        assert not payload["no_stranded_futures"]
        assert not payload["shutdown_bounded"]

    def test_breaker_summary_sums_only_breaker_rows(self):
        from repro.bench.serving_faults import ChaosBenchResult

        result = ChaosBenchResult(
            rows=[
                self._row(
                    scenario="kernel_error-c1",
                    breaker_trips=2,
                    breaker_repromotions=1,
                ),
                self._row(
                    scenario="breaker-repromotion",
                    breaker_trips=1,
                    breaker_repromotions=1,
                ),
            ],
            breaker_final_states_closed=True,
        )
        payload = result.to_json_dict()
        assert payload["breaker"]["trips"] == 3
        # Only the breaker scenario's repromotions count toward the gate:
        # matrix cells may trip without ever re-promoting.
        assert payload["breaker"]["repromotions"] == 1
        assert payload["breaker"]["final_states_closed"]

    def test_reconcile_faults_counts_events_and_unfired_specs(
        self, served_model, tokenizer
    ):
        from repro.bench.serving_faults import _reconcile_faults

        plan = ServingFaultPlan(
            specs=(
                ServingFaultSpec(kind="transient_step", sweep=1, times=1),
                ServingFaultSpec(kind="delay_step", sweep=999),
            ),
            seed=0,
        )
        config = _config(fault_plan=plan, max_step_retries=2)
        with PaletteServer(served_model, tokenizer, config) as server:
            _serve_all(server, PROMPTS[:1])
            events, unfired = _reconcile_faults(server, plan)
        assert events.get("transient_step", 0) == 1
        assert unfired == 1  # the sweep-999 spec never fired
        # No plan at all: nothing to reconcile.
        with PaletteServer(served_model, tokenizer, _config()) as server:
            _serve_all(server, PROMPTS[:1])
            events, unfired = _reconcile_faults(server, None)
        assert events == {}
        assert unfired == 0
