"""Tests for the synthetic data world, corpus, instructions and suites."""

import numpy as np

import repro.tensor as rt
from repro.data import (
    FactWorld,
    alpaca_batches,
    corpus_batches,
    generate_alpaca,
    generate_corpus,
    render_example,
    standard_suites,
)
from repro.data.corpus import corpus_vocabulary, render_fact, _FAMILY_WEIGHTS
from repro.data.tasks import ClozeItem, MultipleChoiceItem
from repro.nn.loss import IGNORE_INDEX


class TestFactWorld:
    def test_deterministic_per_seed(self):
        a, b = FactWorld(seed=3), FactWorld(seed=3)
        assert [f.answer for f in a.all_facts()] == [f.answer for f in b.all_facts()]

    def test_different_seeds_differ(self):
        a, b = FactWorld(seed=0), FactWorld(seed=1)
        assert [f.answer for f in a.all_facts()] != [f.answer for f in b.all_facts()]

    def test_all_families_present(self):
        world = FactWorld()
        assert set(world.facts) == {
            "colors", "tools", "habitats", "categories", "capitals",
            "sizes", "sequences",
        }

    def test_capitals_are_rare_flagged(self):
        world = FactWorld()
        assert all(f.rare for f in world.facts["capitals"])
        assert not any(f.rare for f in world.facts["colors"])

    def test_distractors_exclude_answer(self):
        for fact in FactWorld().all_facts():
            assert fact.answer not in fact.distractor_pool

    def test_capitals_bijective(self):
        world = FactWorld()
        answers = [f.answer for f in world.facts["capitals"]]
        assert len(set(answers)) == len(answers)

    def test_size_facts_respect_order(self):
        world = FactWorld()
        order = world.size_order
        for fact in world.facts["sizes"]:
            small, big = fact.subject.split()
            assert order.index(big) > order.index(small)
            assert fact.answer == big

    def test_sequence_facts_follow_steps(self):
        from repro.data.facts import _STEPS

        world = FactWorld()
        for fact in world.facts["sequences"]:
            activity, step = fact.subject.split()
            steps = _STEPS[activity]
            assert fact.answer == steps[steps.index(step) + 1]

    def test_vocabulary_covers_all_facts(self):
        world = FactWorld()
        vocab = set(world.vocabulary())
        for fact in world.all_facts():
            assert fact.answer in vocab


class TestCorpus:
    def test_size(self):
        world = FactWorld()
        assert len(generate_corpus(world, 500, seed=0)) == 500

    def test_deterministic(self):
        world = FactWorld()
        assert generate_corpus(world, 100, seed=5) == generate_corpus(world, 100, seed=5)

    def test_rare_families_underrepresented(self):
        world = FactWorld()
        corpus = generate_corpus(world, 4000, seed=1)
        capital_lines = sum(1 for s in corpus if "capital" in s)
        color_lines = sum(1 for s in corpus if "color" in s or " is " in s)
        assert capital_lines < len(corpus) * _FAMILY_WEIGHTS["capitals"] / 10
        assert capital_lines > 0
        assert color_lines > capital_lines

    def test_render_fact_templates(self):
        world = FactWorld()
        fact = world.facts["colors"][0]
        text = render_fact(fact, "the color of {subject} is {answer}")
        assert fact.subject in text and fact.answer in text

    def test_vocabulary_closed(self):
        """Every corpus word is in the declared vocabulary."""
        world = FactWorld()
        vocab = set(corpus_vocabulary(world))
        for sentence in generate_corpus(world, 1000, seed=2):
            for word in sentence.split():
                assert word in vocab, word


class TestAlpaca:
    def test_examples_have_qa_structure(self):
        world = FactWorld()
        for example in generate_alpaca(world, 50, seed=0):
            assert example.question.endswith("?")
            assert "question :" in example.text
            assert "answer :" in example.text

    def test_answers_are_correct_facts(self):
        world = FactWorld()
        fact = world.facts["capitals"][0]
        example = render_example(fact)
        assert fact.answer in example.answer
        assert fact.subject in example.question

    def test_vocabulary_closed(self, world, tokenizer):
        for example in generate_alpaca(world, 200, seed=1):
            ids = tokenizer.encode(example.text)
            assert tokenizer.unk_id not in ids, example.text


class TestTasks:
    def test_standard_suites_names_and_kinds(self, world):
        suites = standard_suites(world, n_items=8)
        by_name = {s.name: s for s in suites}
        assert set(by_name) == {
            "piqa_syn", "hellaswag_syn", "winogrande_syn", "arc_easy_syn",
            "arc_challenge_syn", "triviaqa_syn", "mmlu_syn",
        }
        assert by_name["triviaqa_syn"].kind == "cloze"
        assert by_name["piqa_syn"].n_options == 2
        assert by_name["mmlu_syn"].n_options == 4

    def test_mc_items_wellformed(self, world):
        for suite in standard_suites(world, n_items=8):
            if suite.kind != "multiple_choice":
                continue
            for item in suite.items:
                assert isinstance(item, MultipleChoiceItem)
                assert 0 <= item.answer_index < len(item.options)
                assert len(set(item.options)) == len(item.options)

    def test_cloze_items_wellformed(self, world):
        suite = next(s for s in standard_suites(world, 8) if s.kind == "cloze")
        for item in suite.items:
            assert isinstance(item, ClozeItem)
            assert item.prompt.endswith("is")
            assert item.answer

    def test_answers_match_world(self, world):
        """The flagged correct option is the true fact answer."""
        suites = {s.name: s for s in standard_suites(world, n_items=16)}
        color_by_subject = {
            f"the color of {f.subject} is": f.answer for f in world.facts["colors"]
        }
        for item in suites["arc_easy_syn"].items:
            assert item.options[item.answer_index] == color_by_subject[item.context]

    def test_chance_accuracy(self, world):
        suites = {s.name: s for s in standard_suites(world, 4)}
        assert suites["piqa_syn"].chance_accuracy == 0.5
        assert suites["arc_easy_syn"].chance_accuracy == 0.25
        assert suites["triviaqa_syn"].chance_accuracy == 0.0

    def test_deterministic(self, world):
        a = standard_suites(world, n_items=8, seed=55)
        b = standard_suites(world, n_items=8, seed=55)
        assert [i.context for i in a[0].items] == [i.context for i in b[0].items]

    def test_task_vocabulary_closed(self, world, tokenizer):
        for suite in standard_suites(world, n_items=16):
            for item in suite.items:
                if isinstance(item, MultipleChoiceItem):
                    texts = [item.context] + list(item.options)
                else:
                    texts = [item.prompt, item.answer]
                for text in texts:
                    assert tokenizer.unk_id not in tokenizer.encode(text), text


class TestLoader:
    def test_corpus_batch_shapes(self, world, tokenizer):
        corpus = generate_corpus(world, 40, seed=0)
        batches = list(corpus_batches(corpus, tokenizer, 8, rt.CPU, seed=1))
        assert sum(b.batch_size for b in batches) == 40
        for batch in batches:
            assert batch.tokens.shape == batch.targets.shape

    def test_targets_are_shifted_tokens(self, world, tokenizer):
        corpus = ["the color of grass is green"]
        batch = next(iter(corpus_batches(corpus, tokenizer, 1, rt.CPU)))
        tokens = batch.tokens.numpy()[0]
        targets = batch.targets.numpy()[0]
        seq_len = (tokens != tokenizer.pad_id).sum()
        for t in range(seq_len - 1):
            assert targets[t] == tokens[t + 1]

    def test_padding_positions_ignored(self, world, tokenizer):
        corpus = ["grass is green", "the color of the ocean is blue today maybe"]
        batch = next(iter(corpus_batches(corpus, tokenizer, 2, rt.CPU)))
        targets = batch.targets.numpy()
        tokens = batch.tokens.numpy()
        for row_tokens, row_targets in zip(tokens, targets):
            pad_from = (row_tokens != tokenizer.pad_id).sum()
            assert np.all(row_targets[pad_from:] == IGNORE_INDEX)

    def test_alpaca_masks_question(self, world, tokenizer):
        examples = generate_alpaca(world, 4, seed=3)
        batch = next(iter(alpaca_batches(examples, tokenizer, 4, rt.CPU, seed=4)))
        targets = batch.targets.numpy()
        for i, example in enumerate(batch.tokens.numpy()):
            # Some prefix must be masked and some suffix must be scored.
            row = targets[i]
            scored = row != IGNORE_INDEX
            assert scored.any()
            first_scored = int(np.argmax(scored))
            assert first_scored > 2  # question tokens are masked

    def test_epochs_multiply_batches(self, world, tokenizer):
        corpus = generate_corpus(world, 16, seed=5)
        one = list(corpus_batches(corpus, tokenizer, 8, rt.CPU, epochs=1))
        three = list(corpus_batches(corpus, tokenizer, 8, rt.CPU, epochs=3))
        assert len(three) == 3 * len(one)

    def test_max_len_truncation(self, world, tokenizer):
        corpus = generate_corpus(world, 8, seed=6)
        batches = list(
            corpus_batches(corpus, tokenizer, 4, rt.CPU, max_len=5, seed=7)
        )
        for batch in batches:
            assert batch.tokens.shape[1] <= 5
