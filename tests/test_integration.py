"""End-to-end integration tests across subsystem boundaries."""

import numpy as np

import repro.tensor as rt
from repro.baselines import quantize_model_rtn
from repro.core import (
    DKMConfig,
    EDKMConfig,
    ModelCompressor,
    SavedTensorPipeline,
)
from repro.data import alpaca_batches, generate_alpaca, standard_suites
from repro.distributed import LearnerGroup
from repro.evalsuite import evaluate_suites
from repro.llm import FinetuneConfig, train_causal_lm
from repro.memory import global_ledger, profile_memory


class TestCompressedFinetuneEndToEnd:
    def test_dkm_finetune_then_palettize_stays_accurate(
        self, world, tokenizer, model_factory
    ):
        """The headline pipeline: compress-while-fine-tuning, palettize,
        evaluate -- accuracy must stay close to the fp16 starting point."""
        suites = standard_suites(world, n_items=12)
        model = model_factory()
        fp16 = evaluate_suites(model, tokenizer, suites, rt.GPU)

        compressor = ModelCompressor(DKMConfig(bits=3, iters=4))
        compressor.compress(model)
        alpaca = generate_alpaca(world, 200, seed=30)
        result = train_causal_lm(
            model,
            alpaca_batches(alpaca, tokenizer, 16, rt.GPU, epochs=1, seed=31),
            FinetuneConfig(lr=1e-3),
        )
        assert result.final_loss < 1.0

        compressed = evaluate_suites(model, tokenizer, suites, rt.GPU)
        assert compressed.mean_accuracy > fp16.mean_accuracy - 15.0

        report = compressor.finalize(model)
        fp16_bytes = 2 * sum(p.numel for p in model.parameters())
        assert report.total_bytes < fp16_bytes / 3

    def test_edkm_beats_rtn_at_3bit(self, world, tokenizer, model_factory):
        """Table 3's core claim at substrate scale."""
        suites = standard_suites(world, n_items=12)

        rtn_model = model_factory()
        quantize_model_rtn(rtn_model, bits=3, per_channel=False)
        rtn = evaluate_suites(rtn_model, tokenizer, suites, rt.GPU)

        edkm_model = model_factory()
        compressor = ModelCompressor(DKMConfig(bits=3, iters=4))
        compressor.compress(edkm_model)
        alpaca = generate_alpaca(world, 200, seed=32)
        train_causal_lm(
            edkm_model,
            alpaca_batches(alpaca, tokenizer, 16, rt.GPU, epochs=1, seed=33),
            FinetuneConfig(lr=1e-3),
        )
        edkm = evaluate_suites(edkm_model, tokenizer, suites, rt.GPU)
        # Train-time clustering must not trail naive 3-bit rounding.
        assert edkm.mean_accuracy >= rtn.mean_accuracy - 3.0


class TestMemoryPipelineIntegration:
    def test_edkm_training_step_reduces_cpu_footprint(self, world, tokenizer):
        """A full compressed training step under baseline offload vs full
        eDKM shows an order-of-magnitude CPU reduction."""
        from repro.llm import MICRO, build_model

        alpaca = generate_alpaca(world, 16, seed=40)

        def run_step(config, uniquify):
            model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=3)
            model.to(rt.GPU)
            compressor = ModelCompressor(DKMConfig(bits=3, iters=2), config)
            compressor.compress(model)
            for wrapper in compressor.wrapped.values():
                wrapper.uniquify_enabled = uniquify
            pipeline = SavedTensorPipeline(config)
            batches = alpaca_batches(alpaca, tokenizer, 8, rt.GPU, seed=41)
            with profile_memory([rt.CPU.tracker], global_ledger()) as prof:
                train_causal_lm(
                    model, batches, FinetuneConfig(lr=1e-3),
                    pipeline=pipeline, max_steps=1,
                )
            return prof.peak_delta("cpu")

        baseline = run_step(EDKMConfig.baseline_offload(), uniquify=False)
        full = run_step(
            EDKMConfig(group=LearnerGroup(8), shard_min_bytes=512), uniquify=True
        )
        assert full < baseline / 5

    def test_traffic_ledger_sees_both_directions(self, world, tokenizer):
        from repro.llm import MICRO, build_model

        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=4)
        model.to(rt.GPU)
        pipeline = SavedTensorPipeline(EDKMConfig.baseline_offload())
        alpaca = generate_alpaca(world, 8, seed=42)
        with profile_memory([rt.CPU.tracker], global_ledger()) as prof:
            train_causal_lm(
                model,
                alpaca_batches(alpaca, tokenizer, 8, rt.GPU, seed=43),
                FinetuneConfig(lr=1e-3),
                pipeline=pipeline,
                max_steps=1,
            )
        assert prof.traffic("gpu", "cpu") > 0
        assert prof.traffic("cpu", "gpu") > 0


class TestSerializationIntegration:
    def test_save_load_state_roundtrip(self, tmp_path, world, tokenizer):
        from repro.llm import MICRO, build_model
        from repro.tensor import load_state, save_state

        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=5)
        path = str(tmp_path / "model.npz")
        save_state(path, model.state_dict())

        clone = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=6)
        clone.load_state_dict(load_state(path))
        tokens = rt.tensor(np.array([[1, 2, 3]]))
        assert np.array_equal(
            model(tokens.to(model.embed.weight.device)).numpy(),
            clone(tokens.to(clone.embed.weight.device)).numpy(),
        )

    def test_dtype_sidecar_preserved(self, tmp_path):
        from repro.tensor import load_state, save_state

        state = {"w": rt.tensor([1.0, 2.0], dtype="bfloat16")}
        path = str(tmp_path / "state.npz")
        save_state(path, state)
        loaded = load_state(path)
        assert loaded["w"].dtype is rt.bfloat16
