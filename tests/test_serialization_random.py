"""Tests for state persistence and seeded randomness."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.tensor import load_state, save_state


class TestSerialization:
    def test_roundtrip_values_and_shapes(self, tmp_path):
        state = {
            "a": rt.randn(3, 4),
            "b": rt.tensor(np.arange(5)),
        }
        path = str(tmp_path / "state.npz")
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b"}
        assert np.array_equal(loaded["a"].numpy(), state["a"].numpy())
        assert np.array_equal(loaded["b"].numpy(), state["b"].numpy())
        assert loaded["b"].dtype is rt.int64

    def test_roundtrip_preserves_logical_dtypes(self, tmp_path):
        state = {
            "bf16": rt.randn(4, dtype="bfloat16"),
            "fp16": rt.randn(4, dtype="float16"),
        }
        path = str(tmp_path / "dtypes.npz")
        save_state(path, state)
        loaded = load_state(path)
        assert loaded["bf16"].dtype is rt.bfloat16
        assert loaded["fp16"].dtype is rt.float16
        assert np.array_equal(loaded["bf16"].numpy(), state["bf16"].numpy())

    def test_load_onto_device(self, tmp_path):
        path = str(tmp_path / "dev.npz")
        save_state(path, {"w": rt.randn(2)})
        loaded = load_state(path, device="gpu")
        assert loaded["w"].device.name == "gpu"

    def test_load_without_extension(self, tmp_path):
        path = str(tmp_path / "noext")
        save_state(path, {"w": rt.randn(2)})
        loaded = load_state(path)
        assert "w" in loaded

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(str(tmp_path / "nope.npz"))


class TestSeededRandomness:
    def test_manual_seed_reproducible(self):
        rt.manual_seed(123)
        a = rt.randn(8).numpy()
        rt.manual_seed(123)
        b = rt.randn(8).numpy()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        rt.manual_seed(1)
        a = rt.randn(8).numpy()
        rt.manual_seed(2)
        b = rt.randn(8).numpy()
        assert not np.array_equal(a, b)

    def test_explicit_generator_isolated(self):
        rng = np.random.default_rng(9)
        rt.manual_seed(0)
        a = rt.randn(4, rng=rng).numpy()
        rng2 = np.random.default_rng(9)
        b = rt.randn(4, rng=rng2).numpy()
        assert np.array_equal(a, b)

    def test_rand_in_unit_interval(self):
        values = rt.rand(1000).numpy()
        assert values.min() >= 0.0 and values.max() < 1.0

    def test_default_rng_accessor(self):
        rt.manual_seed(7)
        assert rt.default_rng() is rt.default_rng()
