"""Sharded cluster-scheduler tests (see ``repro/distributed/scheduler.py``
and ``docs/sharding.md``).

The contract under test, in three layers:

- **Placement properties** (hypothesis): over randomized layer-size
  distributions, :class:`NodePlacement` honors the byte-balance bound
  ``max load <= mean load + largest layer``, is a deterministic function
  of its input, moves the minimum set of layers on node add/remove, and
  never exceeds a positive per-node budget.
- **Equivalence**: ``backend="sharded"`` is *bit-identical* to serial --
  centroids, temperatures, and per-layer ``FastPathStats`` counters --
  through cold sweeps, warm delta-shipped sweeps, node resizes, and
  bounded work stealing, while every cross-node transfer lands in the
  traffic ledger under a ``shard:*`` tag.
- **Chaos matrix**: every :data:`~repro.core.faults.FAULT_KINDS` fault,
  injected into a cold and a warm sweep, is survived with results still
  bit-identical to an undisturbed serial run and the fault log / ledger
  reconciling with what was injected.
"""

import dataclasses
import warnings
from concurrent.futures import BrokenExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.core import (
    CompressorConfig,
    DKMConfig,
    FaultPlan,
    FaultSpec,
    LayerDelta,
    LayerTask,
    ModelCompressor,
    RobustnessWarning,
    WorkerCacheRegistry,
)
from repro.core.compressor import SWEEP_OPS
from repro.core.faults import FAULT_KINDS
from repro.core.procpool import StaleWorkerCache
from repro.distributed import NodePlacement, PlacementError, ShardedClusterEngine
from repro.distributed.scheduler import _run_node_batch
from repro.memory.traffic import global_ledger
from repro.tensor.dtype import bfloat16
from repro.tensor.serialization import export_tensor_shm
from repro.tensor.tensor import Tensor


class _Stack(nn.Module):
    def __init__(self, n_layers=4, in_f=24, out_f=32, seed=0, dims=None):
        super().__init__()
        dims = dims or [(in_f, out_f)] * n_layers
        for i, (i_f, o_f) in enumerate(dims):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(i_f, o_f, bias=False, rng=np.random.default_rng(seed + i)),
            )


def _compressor(backend, n_layers=4, seed=0, dims=None, **config_kwargs):
    stack = _Stack(n_layers=n_layers, seed=seed, dims=dims)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=3, iters=3),
        config=CompressorConfig(backend=backend, **config_kwargs),
    )
    compressor.compress(stack)
    return compressor, stack


def _stats(compressor):
    return {
        name: dataclasses.asdict(wrapper.step_cache.stats)
        for name, wrapper in compressor.wrapped.items()
    }


def _states(compressor):
    return {
        name: (
            wrapper.clusterer.state.centroids.copy(),
            wrapper.clusterer.state.temperature,
        )
        for name, wrapper in compressor.wrapped.items()
    }


def _assert_identical(reference, candidate):
    ref_states, cand_states = _states(reference), _states(candidate)
    assert set(ref_states) == set(cand_states)
    for name in ref_states:
        assert np.array_equal(ref_states[name][0], cand_states[name][0]), name
        assert ref_states[name][1] == cand_states[name][1], name
    assert _stats(reference) == _stats(candidate)


def _serial_reference(n_sweeps=2, **kwargs):
    serial, _ = _compressor("serial", **kwargs)
    try:
        for _ in range(n_sweeps):
            serial.refine_all()
        return _states(serial), _stats(serial)
    finally:
        serial.close()


# ----------------------------------------------------------------------
# Satellite 1: property-based placement
# ----------------------------------------------------------------------

layer_sizes = st.lists(st.integers(1, 1_000_000), min_size=1, max_size=24)


def _sized(sizes):
    return [(f"layer{i}", size) for i, size in enumerate(sizes)]


class TestPlacementProperties:
    """Randomized invariants of the byte-balanced greedy packer."""

    @given(layer_sizes, st.integers(1, 6))
    @settings(max_examples=100, deadline=None)
    def test_balance_bound(self, sizes, n_nodes):
        placement = NodePlacement.build(_sized(sizes), n_nodes)
        assert placement.is_balanced()
        assert max(placement.loads()) <= sum(sizes) / n_nodes + max(sizes)

    @given(layer_sizes, st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_determinism(self, sizes, n_nodes):
        first = NodePlacement.build(_sized(sizes), n_nodes)
        second = NodePlacement.build(_sized(sizes), n_nodes)
        assert first.pins == second.pins
        assert first.loads() == second.loads()

    @given(layer_sizes, st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_node_add_minimal_movement(self, sizes, n_nodes):
        before = NodePlacement.build(_sized(sizes), n_nodes)
        after = before.rebalance(_sized(sizes), n_nodes + 1)
        assert after.is_balanced()
        # Layers only ever move; none appear or vanish.
        assert set(after.pins) == set(before.pins)
        # The settle pass never touches a node-balanced placement's pins
        # beyond what the bound demands: every move lands on a node.
        for name, node in after.pins.items():
            assert 0 <= node < n_nodes + 1, name

    @given(layer_sizes, st.integers(2, 6))
    @settings(max_examples=50, deadline=None)
    def test_node_remove_moves_only_orphans(self, sizes, n_nodes):
        before = NodePlacement.build(_sized(sizes), n_nodes)
        after = before.rebalance(_sized(sizes), n_nodes - 1)
        assert after.is_balanced()
        for name, node in before.pins.items():
            if node < n_nodes - 1:  # survivor: pin must not move
                assert after.pins[name] == node, name
            else:  # orphan: must land on a surviving node
                assert 0 <= after.pins[name] < n_nodes - 1, name

    @given(layer_sizes, st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_budget_never_exceeded(self, sizes, n_nodes):
        # A budget at the balance bound is always satisfiable.
        budget = int(sum(sizes) / n_nodes + max(sizes)) + 1
        placement = NodePlacement.build(_sized(sizes), n_nodes, budget=budget)
        assert max(placement.loads()) <= budget

    def test_infeasible_budget_raises(self):
        with pytest.raises(PlacementError, match="exceeds the per-node budget"):
            NodePlacement.build([("big", 100)], 2, budget=50)
        with pytest.raises(PlacementError, match="no node can take"):
            NodePlacement.build(
                [("a", 60), ("b", 60), ("c", 60)], 2, budget=100
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlacementError, match="duplicate"):
            NodePlacement.build([("a", 1), ("a", 2)], 2)

    def test_bytes_beat_counts(self):
        """One huge embedding is placed alone; count-balancing would not."""
        sized = [("embed", 1000), ("a", 10), ("b", 10), ("c", 10), ("d", 10)]
        placement = NodePlacement.build(sized, 2)
        embed_node = placement.pins["embed"]
        assert placement.layers_for(embed_node) == ["embed"]
        assert placement.is_balanced()

    def test_empty_layer_set(self):
        placement = NodePlacement.build([], 2)
        assert placement.loads() == [0, 0]
        assert placement.balance_bound() == 0.0
        assert placement.is_balanced()

    def test_rebalance_budget_pressure_rebuilds_cold(self):
        """An orphan that cannot fit while keeping survivors forces a
        cold rebuild -- which here succeeds by splitting them up."""
        before = NodePlacement.build(
            [("a", 60), ("b", 60), ("c", 60), ("d", 60)], 2
        )
        after = before.rebalance([("a", 60), ("b", 60), ("e", 100)], 2, budget=130)
        assert max(after.loads()) <= 130
        assert after.layers_for(after.pins["e"]) == ["e"]

    def test_rebalance_budget_shrink_below_survivors_raises(self):
        """Survivors over a tightened budget rebuild cold; a layer too
        big for any node still raises."""
        before = NodePlacement.build([("a", 50), ("b", 50)], 2)
        with pytest.raises(PlacementError, match="exceeds the per-node budget"):
            before.rebalance([("a", 90), ("b", 90)], 2, budget=80)

    def test_is_balanced_detects_injected_imbalance(self):
        """The audit hook fails on an everything-on-node-zero mutation."""
        sized = [(f"layer{i}", 100) for i in range(4)]
        good = NodePlacement.build(sized, 2)
        assert good.is_balanced()
        mutated = NodePlacement(
            names=good.names,
            sizes=good.sizes,
            n_nodes=good.n_nodes,
            pins={name: 0 for name in good.names},
            budget=good.budget,
        )
        assert not mutated.is_balanced()


class TestShardedConfig:
    def test_backend_registered(self):
        config = CompressorConfig(backend="sharded", num_nodes=3)
        assert config.backend == "sharded"
        with pytest.raises(ValueError, match="backend"):
            CompressorConfig(backend="cluster")

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="num_nodes"):
            CompressorConfig(num_nodes=0)
        with pytest.raises(ValueError, match="node_memory_budget"):
            CompressorConfig(node_memory_budget=-1)
        with pytest.raises(ValueError, match="steal_max_layers"):
            CompressorConfig(steal_max_layers=-1)

    def test_resolve_nodes_caps_at_layers(self):
        config = CompressorConfig(num_nodes=8)
        assert config.resolve_nodes(3) == 3
        assert config.resolve_nodes(100) == 8
        assert config.resolve_nodes(0) == 1

    def test_round_trip(self):
        config = CompressorConfig(
            backend="sharded", num_nodes=4, node_memory_budget=1 << 20,
            steal_max_layers=2,
        )
        restored = CompressorConfig.from_dict(config.to_dict())
        assert restored.num_nodes == 4
        assert restored.node_memory_budget == 1 << 20
        assert restored.steal_max_layers == 2


# ----------------------------------------------------------------------
# Tentpole: sharded == serial, placement/wire-format/stealing behavior
# ----------------------------------------------------------------------


class TestShardedEquivalence:
    @pytest.mark.timeout(120)
    def test_cold_and_warm_bit_identical_to_serial(self):
        serial, _ = _compressor("serial")
        sharded, _ = _compressor("sharded", num_nodes=2)
        try:
            ledger = global_ledger()
            ledger.clear()
            for _ in range(2):
                serial.refine_all()
                sharded.refine_all()
            _assert_identical(serial, sharded)
            assert sharded.degradations == []
            # Warm sweep shipped O(k) deltas, not full tensors.
            transport = sharded.transport_stats()
            assert transport.last_sweep_delta_tasks == 4
            assert transport.last_sweep_full_tasks == 0
            # Every cross-node transfer is tagged in the ledger.
            tags = {
                record.tag
                for record in ledger.transfers()
                if record.tag.startswith("shard:")
            }
            for node in (0, 1):
                assert f"shard:ship:node{node}" in tags
                assert f"shard:gossip:node{node}" in tags
                assert f"shard:gather:node{node}" in tags
        finally:
            serial.close()
            sharded.close()

    @pytest.mark.timeout(120)
    def test_byte_balanced_placement_and_shm_cleanup(self):
        # One layer 16x the others: byte-balance isolates it.
        dims = [(24, 256), (24, 16), (24, 16), (24, 16), (24, 16)]
        sharded, _ = _compressor("sharded", dims=dims, num_nodes=2)
        try:
            sharded.refine_all()
            engine = sharded._engine
            placement = engine.placement()
            assert placement.is_balanced()
            big_node = placement.pins["layer0"]
            assert placement.layers_for(big_node) == ["layer0"]
        finally:
            sharded.close()
        assert engine.active_shm_names() == []

    @pytest.mark.timeout(120)
    def test_over_budget_model_compresses(self):
        """A model whose bytes exceed one node's budget still compresses."""
        dims = [(24, 256), (24, 16), (24, 16), (24, 16), (24, 16)]
        total = sum(i * o * bfloat16.itemsize for i, o in dims)
        budget = 24 * 256 * bfloat16.itemsize + 24 * 16 * bfloat16.itemsize
        assert total > budget  # would not fit on a single node
        sharded, _ = _compressor(
            "sharded", dims=dims, num_nodes=2, node_memory_budget=budget
        )
        try:
            sharded.refine_all()
            assert max(sharded._engine.placement().loads()) <= budget
            assert sharded.degradations == []
        finally:
            sharded.close()

    @pytest.mark.timeout(120)
    def test_single_node_degenerate(self):
        ref_states, ref_stats = _serial_reference(n_sweeps=1)
        sharded, _ = _compressor("sharded", num_nodes=1)
        try:
            sharded.refine_all()
            states = _states(sharded)
            for name in ref_states:
                assert np.array_equal(ref_states[name][0], states[name][0])
            assert _stats(sharded) == ref_stats
        finally:
            sharded.close()

    @pytest.mark.timeout(180)
    def test_placement_determinism_across_engines(self):
        a, _ = _compressor("sharded", num_nodes=2)
        b, _ = _compressor("sharded", num_nodes=2)
        try:
            a.refine_all()
            b.refine_all()
            assert a._engine.placement().pins == b._engine.placement().pins
        finally:
            a.close()
            b.close()


class TestNodeResize:
    @pytest.mark.timeout(180)
    def test_add_and_remove_nodes_mid_run(self):
        """Resizes move the minimum, keep deltas flowing, stay identical."""
        ref_states, ref_stats = _serial_reference(n_sweeps=3)
        sharded, _ = _compressor("sharded", num_nodes=2)
        try:
            sharded.refine_all()
            before = sharded._engine.placement()

            sharded.config.num_nodes = 3
            sharded.refine_all()
            grown = sharded._engine.placement()
            moved = [n for n in before.pins if before.pins[n] != grown.pins[n]]
            transport = sharded.transport_stats()
            assert grown.is_balanced()
            # Only the moved layers lose residency; the rest ship deltas.
            assert transport.last_sweep_full_tasks == len(moved)
            assert transport.last_sweep_delta_tasks == 4 - len(moved)
            assert len(moved) <= 2  # minimal movement, not a reshuffle

            sharded.config.num_nodes = 2
            sharded.refine_all()
            shrunk = sharded._engine.placement()
            for name, node in grown.pins.items():
                if node < 2:  # survivors keep their pins
                    assert shrunk.pins[name] == node

            states = _states(sharded)
            for name in ref_states:
                assert np.array_equal(ref_states[name][0], states[name][0])
            assert _stats(sharded) == ref_stats
            assert sharded.degradations == []
        finally:
            sharded.close()


class TestWorkStealing:
    @pytest.mark.timeout(180)
    def test_stealing_preserves_identity_and_pins(self):
        """A delayed victim's held-back tail is stolen; results and pins
        are untouched."""
        ref_states, ref_stats = _serial_reference(n_sweeps=2)
        # Delay the other node's *primary* task so this race is not one:
        # the undelayed node drains its queue, takes its own held tail,
        # then must cross-steal the victim's -- a full task on the cold
        # sweep (sync record dropped), a delta rebuilt into a transient
        # full task on the warm sweep (sync record kept).
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="delay", sweep=1, layer="layer0", seconds=0.6),
                FaultSpec(kind="delay", sweep=2, layer="layer0", seconds=0.6),
            )
        )
        sharded, _ = _compressor(
            "sharded",
            num_nodes=2,
            steal_max_layers=1,
            fault_plan=plan,
            task_timeout_s=30.0,
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RobustnessWarning)
                sharded.refine_all()
                pins_after_cold = dict(sharded._engine.placement().pins)
                sharded.refine_all()
            assert sharded._engine.steals >= 2  # cold + warm sweep each stole
            assert sharded._engine.last_sweep_steals >= 1
            # Stealing never re-pins: placement is exactly as placed.
            assert sharded._engine.placement().pins == pins_after_cold
            states = _states(sharded)
            for name in ref_states:
                assert np.array_equal(ref_states[name][0], states[name][0])
            assert _stats(sharded) == ref_stats
            assert sharded.degradations == []
        finally:
            sharded.close()

    @pytest.mark.timeout(120)
    def test_steal_budget_bounds_held_tail(self):
        """``steal_max_layers`` holds back at most that many layers per
        node, and each node always keeps at least one primary task."""
        sharded, _ = _compressor(
            "sharded", n_layers=6, num_nodes=2, steal_max_layers=10
        )
        try:
            sharded.refine_all()
            placement = sharded._engine.placement()
            for node in range(2):
                assert len(placement.layers_for(node)) >= 1
            assert sharded.degradations == []
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Satellite 2: chaos matrix -- every fault kind x {cold, warm} sweep
# ----------------------------------------------------------------------


class TestShardedChaosMatrix:
    """6 fault kinds x {cold sweep, warm sweep} = 12 cells, each required
    to stay bit-identical to undisturbed serial with the fault log and
    ledger reconciling against what was injected."""

    @pytest.fixture(scope="class")
    def reference(self):
        return _serial_reference(n_sweeps=2)

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("sweep", [1, 2], ids=["cold", "warm"])
    def test_cell(self, kind, sweep, reference):
        ref_states, ref_stats = reference
        plan = FaultPlan.single(kind, sweep=sweep, seconds=0.2)
        sharded, _ = _compressor(
            "sharded", num_nodes=2, fault_plan=plan, task_timeout_s=15.0
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RobustnessWarning)
                for _ in range(2):
                    sharded.refine_all()
            states = _states(sharded)
            for name in ref_states:
                assert np.array_equal(ref_states[name][0], states[name][0]), (
                    f"{kind}/sweep{sweep}: centroids diverged on {name}"
                )
                assert ref_states[name][1] == states[name][1], name
            assert _stats(sharded) == ref_stats
            assert sharded.degradations == []
            # Reconciliation: the log records exactly the injected fault
            # (corrupt_delta on the cold sweep is a structural no-op --
            # there is no delta to corrupt yet).
            log = sharded.fault_log()
            assert log is not None
            if kind == "corrupt_delta" and sweep == 1:
                assert log.count(kind) == 0
            else:
                assert log.count(kind) == 1
        finally:
            sharded.close()


class TestStallFallback:
    @pytest.mark.timeout(120)
    def test_every_node_hung_watchdog_recovers(self):
        """Both nodes' primary tasks hang far past ``task_timeout_s``:
        the wait stalls globally, the watchdog kills and respawns every
        node, full re-ships recover, and the still-held tails drain on
        their own nodes -- bit-identical to serial throughout."""
        ref_states, ref_stats = _serial_reference(n_sweeps=1)
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="hang", sweep=1, layer="layer0", seconds=600.0),
                FaultSpec(kind="hang", sweep=1, layer="layer1", seconds=600.0),
            )
        )
        sharded, _ = _compressor(
            "sharded",
            num_nodes=2,
            steal_max_layers=1,
            fault_plan=plan,
            task_timeout_s=1.0,
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RobustnessWarning)
                sharded.refine_all()
            assert sharded._engine.respawns >= 1
            assert sharded.fault_log().count("hang") == 2
            states = _states(sharded)
            for name in ref_states:
                assert np.array_equal(ref_states[name][0], states[name][0])
            assert _stats(sharded) == ref_stats
            assert sharded.degradations == []
        finally:
            sharded.close()


class _BrokenPool:
    """A stand-in executor whose node is already dead at submit time."""

    def submit(self, fn, *args, **kwargs):
        raise BrokenExecutor("node down")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestEngineWhiteBox:
    """Coordinator-side edges exercised without spawning pools."""

    def _engine(self):
        engine = ShardedClusterEngine(
            CompressorConfig(backend="sharded", num_nodes=2, steal_max_layers=1)
        )
        engine._state["slots"] = [_BrokenPool(), _BrokenPool()]
        engine._affinity = NodePlacement.build(
            [("layer0", 100), ("layer1", 100)], 2
        )
        return engine

    def _task(self, name):
        return LayerTask(
            name=name,
            handle=None,
            dkm_config=DKMConfig(bits=3, iters=2),
            state=None,
            warm=False,
            epoch=1,
        )

    def test_submit_to_dead_node_returns_none(self):
        engine = self._engine()
        assert engine._submit_slot(0, "refine", {}, [self._task("layer0")]) is None
        assert engine.last_sweep_steals == 0

    def test_next_work_own_tail_on_dead_node(self):
        engine = self._engine()
        held = [[self._task("layer0")], []]
        batch, future = engine._next_work(0, held, "refine", {})
        assert future is None  # crash taxonomy takes over
        assert [t.name for t in batch] == ["layer0"]
        assert held[0] == []

    def test_next_work_steal_from_dead_thief(self):
        engine = self._engine()
        held = [[], [self._task("layer1")]]
        batch, future = engine._next_work(0, held, "refine", {})
        assert future is None
        assert [t.name for t in batch] == ["layer1"]
        assert engine.steals == 1  # counted even though the thief died

    def test_ledger_gather_skips_empty(self):
        engine = self._engine()
        ledger = global_ledger()
        before = len(ledger.transfers())
        engine._ledger_gather(0, [])
        assert len(ledger.transfers()) == before

    def test_drain_flushes_tolerates_dead_nodes(self):
        from concurrent.futures import Future

        engine = self._engine()
        done: Future = Future()
        done.set_result([])
        broken: Future = Future()
        broken.set_exception(BrokenExecutor("node down"))
        stale: Future = Future()
        stale.set_exception(StaleWorkerCache("resident cache gone"))
        engine._drain_flushes([(0, done), (1, broken), (0, stale)])


# ----------------------------------------------------------------------
# Worker-side machinery, in process (no pool spawn)
# ----------------------------------------------------------------------


class TestGossipReconcile:
    """In-process exercises of the node-side gossip reconciliation."""

    def _task(self, name="layer0", seed=0, epoch=1, n=256):
        values = np.random.default_rng(seed).standard_normal(n).astype(np.float32)
        tensor = Tensor.from_numpy(values * 0.1, dtype=bfloat16)
        export = export_tensor_shm(tensor)
        task = LayerTask(
            name=name,
            handle=export.handle,
            dkm_config=DKMConfig(bits=3, iters=2),
            state=None,
            warm=False,
            epoch=epoch,
        )
        return export, task

    def _delta(self, task, outcome, warm=True):
        return LayerDelta(
            name=task.name,
            version=task.handle.version,
            epoch=task.epoch,
            state=outcome.state,
            warm=warm,
        )

    def test_matching_gossip_keeps_residency(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            first = registry.run(SWEEP_OPS["refine"], task, {})
            gossip = {
                task.name: (task.handle.shm_name, task.handle.version, task.epoch)
            }
            registry.reconcile(gossip)
            second = registry.run(SWEEP_OPS["refine"], self._delta(task, first), {})
            assert second.stats.uniquify_hits == 1
            assert second.stats.uniquify_misses == 0
        finally:
            registry.close()
            export.close()

    def test_absent_from_gossip_prunes(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            first = registry.run(SWEEP_OPS["refine"], task, {})
            registry.reconcile({})  # coordinator no longer pins it here
            with pytest.raises(StaleWorkerCache):
                registry.run(SWEEP_OPS["refine"], self._delta(task, first), {})
        finally:
            registry.close()
            export.close()

    def test_mismatched_triple_drops_entry(self):
        export, task = self._task()
        registry = WorkerCacheRegistry()
        try:
            first = registry.run(SWEEP_OPS["refine"], task, {})
            gossip = {
                task.name: (
                    task.handle.shm_name,
                    task.handle.version + 1,  # coordinator re-exported
                    task.epoch,
                )
            }
            registry.reconcile(gossip)
            with pytest.raises(StaleWorkerCache):
                registry.run(SWEEP_OPS["refine"], self._delta(task, first), {})
        finally:
            registry.close()
            export.close()

    def test_run_node_batch_reconciles_then_runs(self):
        export_a, task_a = self._task(name="a", seed=1)
        export_b, task_b = self._task(name="b", seed=2)
        try:
            outcomes = _run_node_batch(
                "refine", {}, [task_a, task_b], 0,
                {  # gossip mentioning neither is a no-op on a cold registry
                    "ghost": ("shm", 1, 1),
                },
            )
            assert [outcome.name for outcome in outcomes] == ["a", "b"]
            for outcome in outcomes:
                assert outcome.stats.uniquify_misses == 1
        finally:
            from repro.core.procpool import _worker_cache_registry

            _worker_cache_registry().prune(set())
            export_a.close()
            export_b.close()
