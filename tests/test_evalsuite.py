"""Tests for the evaluation harness, perplexity, and size arithmetic."""

import numpy as np
import pytest

import repro.tensor as rt
import repro.nn as nn
from repro.data import standard_suites
from repro.data.tasks import MultipleChoiceItem, TaskSuite
from repro.evalsuite import (
    GB,
    QuantScheme,
    attention_map_bytes,
    evaluate_suites,
    fp16_size_bytes,
    model_size_gb,
    option_log_likelihood,
    paper_schemes,
    perplexity,
    score_multiple_choice,
)
from repro.llm import LLAMA_7B, WordTokenizer
from repro.tensor.tensor import Tensor


class BigramOracle(nn.Module):
    """A stub LM that deterministically predicts via a bigram table."""

    def __init__(self, vocab_size: int, transitions: dict[tuple[int, int], None] | dict):
        super().__init__()
        self.vocab_size = vocab_size
        self.table = np.full((vocab_size, vocab_size), -10.0, dtype=np.float32)
        for prev, nxt in transitions:
            self.table[prev, nxt] = 10.0

    def forward(self, tokens: Tensor) -> Tensor:
        idx = tokens._np()
        logits = self.table[idx]
        return Tensor.from_numpy(logits, device=tokens.device)


class TestHarnessScoring:
    def _oracle_setup(self):
        tok = WordTokenizer(words=["sky", "is", "blue", "green"])
        blue = tok.encode("blue")[0]
        green = tok.encode("green")[0]
        is_id = tok.encode("is")[0]
        sky = tok.encode("sky")[0]
        model = BigramOracle(
            tok.vocab_size,
            {(sky, is_id): None, (is_id, blue): None},
        )
        return model, tok, blue, green

    def test_option_log_likelihood_prefers_oracle_answer(self):
        model, tok, _, _ = self._oracle_setup()
        ll_blue = option_log_likelihood(model, tok, "sky is", "blue", rt.CPU)
        ll_green = option_log_likelihood(model, tok, "sky is", "green", rt.CPU)
        assert ll_blue > ll_green

    def test_length_normalization(self):
        """Multi-token options are compared per token, not by total mass."""
        tok = WordTokenizer(words=["a", "b", "c"])
        a, b = tok.encode("a")[0], tok.encode("b")[0]
        model = BigramOracle(tok.vocab_size, {(tok.bos_id, a): None, (a, a): None})
        ll_short = option_log_likelihood(model, tok, "", "a", rt.CPU)
        ll_long = option_log_likelihood(model, tok, "", "a a", rt.CPU)
        assert ll_short == pytest.approx(ll_long, abs=1e-4)

    def test_score_multiple_choice_oracle_is_perfect(self):
        model, tok, blue, green = self._oracle_setup()
        suite = TaskSuite(
            name="stub",
            kind="multiple_choice",
            items=[
                MultipleChoiceItem("sky is", ("green", "blue"), 1),
                MultipleChoiceItem("sky is", ("blue", "green"), 0),
            ],
            n_options=2,
        )
        result = score_multiple_choice(model, tok, suite, rt.CPU)
        assert result.accuracy == 100.0
        assert result.n_items == 2

    def test_empty_option_rejected(self):
        model, tok, _, _ = self._oracle_setup()
        with pytest.raises(ValueError):
            option_log_likelihood(model, tok, "sky is", "", rt.CPU)

    def test_trained_model_beats_chance(self, world, tokenizer, trained_model):
        suites = standard_suites(world, n_items=16)
        report = evaluate_suites(trained_model, tokenizer, suites, rt.GPU)
        for name, result in report.results.items():
            if name == "triviaqa_syn":
                continue  # generation task can be near zero for weak models
            assert result.accuracy > result.chance, name
        assert report.mean_accuracy > 50.0

    def test_evaluate_restores_training_mode(self, world, tokenizer, trained_model):
        trained_model.train()
        evaluate_suites(
            trained_model, tokenizer, standard_suites(world, n_items=2)[:1], rt.GPU
        )
        assert trained_model.training
        trained_model.eval()

    def test_report_as_row_order(self, world, tokenizer, trained_model):
        suites = standard_suites(world, n_items=4)
        report = evaluate_suites(trained_model, tokenizer, suites, rt.GPU)
        order = [s.name for s in suites]
        row = report.as_row(order)
        assert len(row) == 7


class TestPerplexity:
    def test_oracle_has_low_perplexity_on_its_bigrams(self):
        tok = WordTokenizer(words=["x", "y"])
        x, y = tok.encode("x")[0], tok.encode("y")[0]
        transitions = {
            (tok.bos_id, x): None, (x, y): None, (y, x): None,
            (y, tok.eos_id): None,
        }
        model = BigramOracle(tok.vocab_size, transitions)
        ppl = perplexity(model, tok, ["x y"], rt.CPU)
        assert ppl < 1.5

    def test_uniform_model_perplexity_is_vocab_size(self):
        tok = WordTokenizer(words=["x", "y"])
        model = BigramOracle(tok.vocab_size, {})  # all logits equal
        ppl = perplexity(model, tok, ["x y x"], rt.CPU)
        assert ppl == pytest.approx(tok.vocab_size, rel=0.01)

    def test_empty_corpus_raises(self):
        tok = WordTokenizer(words=["x"])
        model = BigramOracle(tok.vocab_size, {})
        with pytest.raises(ValueError):
            perplexity(model, tok, [], rt.CPU)


class TestModelSize:
    def test_fp16_llama_size_matches_paper(self):
        assert fp16_size_bytes(LLAMA_7B) / GB == pytest.approx(12.6, abs=0.1)

    def test_attention_map_claim(self):
        # ~224 GB (paper, decimal GB with rounded 7B params); ours is exact.
        measured = attention_map_bytes(LLAMA_7B, bits=4) / 1e9
        assert measured == pytest.approx(215.6, abs=1.0)

    def test_edkm3_size_matches_paper(self):
        size = model_size_gb(LLAMA_7B, paper_schemes()["edkm3"])
        assert size == pytest.approx(2.5, abs=0.1)

    def test_table3_size_column_ordering(self):
        """eDKM-3bit is the smallest of the paper's Table 3 rows.

        (The extra ``rtn3`` reference scheme is not a paper row and lands
        marginally below eDKM analytically, so it is excluded here.)
        """
        paper_rows = {
            "fp16", "rtn4", "gptq4_g128", "awq4_g128", "llmqat4",
            "gptq3_g128", "awq3_g128", "edkm3",
        }
        schemes = paper_schemes()
        sizes = {k: model_size_gb(LLAMA_7B, schemes[k]) for k in paper_rows}
        assert sizes["edkm3"] == min(sizes.values())
        assert sizes["fp16"] == max(sizes.values())
        assert sizes["gptq3_g128"] < sizes["gptq4_g128"]
        assert sizes["edkm3"] < sizes["gptq3_g128"]

    def test_group_overhead_increases_size(self):
        grouped = QuantScheme("g", body_bits=4, group_size=128, asymmetric=True)
        ungrouped = QuantScheme("p", body_bits=4, group_size=None)
        assert model_size_gb(LLAMA_7B, grouped) > model_size_gb(LLAMA_7B, ungrouped)

    def test_lut_overhead_is_small(self):
        lut = QuantScheme("l", body_bits=3, lut_entries=8, embed_bits=8)
        raw_bits = (
            LLAMA_7B.body_params() * 3
            + LLAMA_7B.embedding_params() * 8
            + LLAMA_7B.norm_params() * 16
        )
        overhead = model_size_gb(LLAMA_7B, lut) - raw_bits / 8 / GB
        assert 0 <= overhead < 0.01  # LUTs are tiny at 7B scale

    def test_all_paper_schemes_within_tolerance(self):
        """Every Table 3 size within 0.4 GB of the paper's column."""
        paper = {
            "fp16": 12.6, "rtn4": 3.5, "gptq4_g128": 3.7, "awq4_g128": 3.7,
            "llmqat4": 3.5, "gptq3_g128": 3.0, "awq3_g128": 3.0, "edkm3": 2.5,
        }
        schemes = paper_schemes()
        for key, expected in paper.items():
            measured = model_size_gb(LLAMA_7B, schemes[key])
            assert measured == pytest.approx(expected, abs=0.4), key
