"""Tests for the DKM clustering layer (dense path and refinement)."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.core import DKMConfig
from repro.core.dkm import (
    DKMClusterer,
    default_temperature,
    init_centroids_quantile,
)


def _weight_tensor(n=2000, seed=0, dtype="bfloat16", requires_grad=False):
    values = (np.random.default_rng(seed).standard_normal(n) * 0.05).astype(np.float32)
    return rt.Tensor.from_numpy(
        values, dtype=dtype, device="gpu", requires_grad=requires_grad
    )


class TestConfig:
    def test_n_clusters(self):
        assert DKMConfig(bits=3).n_clusters == 8
        assert DKMConfig(bits=4).n_clusters == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DKMConfig(bits=0)
        with pytest.raises(ValueError):
            DKMConfig(bits=9)
        with pytest.raises(ValueError):
            DKMConfig(temperature=-1.0)
        with pytest.raises(ValueError):
            DKMConfig(iters=0)


class TestInitialization:
    def test_quantile_init_spans_distribution(self):
        values = np.random.default_rng(0).standard_normal(10_000).astype(np.float32)
        centroids = init_centroids_quantile(values, 8)
        assert centroids.shape == (8,)
        assert np.all(np.diff(centroids) > 0)  # sorted, distinct
        assert centroids[0] > values.min()
        assert centroids[-1] < values.max()

    def test_default_temperature_positive_and_scale_aware(self):
        small = default_temperature(np.array([0.0, 0.01]), 8)
        large = default_temperature(np.array([0.0, 1.0]), 8)
        assert 0 < small < large

    def test_default_temperature_degenerate_distribution(self):
        assert default_temperature(np.array([0.5, 0.5]), 8) > 0


class TestRefinement:
    def test_centroids_converge(self):
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=30))
        w = _weight_tensor()
        state = clusterer.refine(w)
        before = state.centroids.copy()
        state2 = clusterer.refine(w)
        # Re-refining an already-converged state moves centroids little.
        assert np.abs(state2.centroids - before).max() < 1e-3

    def test_reconstruction_error_below_random_codebook(self):
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=10))
        w = _weight_tensor()
        clusterer.refine(w)
        refined_err = clusterer.reconstruction_error(w)
        random_clusterer = DKMClusterer(DKMConfig(bits=3, iters=10))
        random_clusterer.state = type(clusterer.state)(
            centroids=np.random.default_rng(0)
            .uniform(-0.2, 0.2, 8)
            .astype(np.float32),
            temperature=clusterer.state.temperature,
        )
        random_err = random_clusterer.reconstruction_error(w)
        assert refined_err < random_err

    def test_more_bits_lower_error(self):
        w = _weight_tensor()
        errors = []
        for bits in (2, 3, 4):
            clusterer = DKMClusterer(DKMConfig(bits=bits, iters=10))
            clusterer.refine(w)
            errors.append(clusterer.reconstruction_error(w))
        assert errors[0] > errors[1] > errors[2]

    def test_warm_start_preserved_across_calls(self):
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=2))
        w = _weight_tensor()
        clusterer.refine(w)
        first = clusterer.state
        clusterer.refine(w)
        assert clusterer.state is first  # same state object, warm-started

    def test_explicit_temperature_respected(self):
        clusterer = DKMClusterer(DKMConfig(bits=3, temperature=0.123))
        clusterer.refine(_weight_tensor())
        assert clusterer.state.temperature == 0.123

    def test_hard_assign_requires_state(self):
        clusterer = DKMClusterer(DKMConfig())
        with pytest.raises(RuntimeError):
            clusterer.hard_assign(_weight_tensor())

    def test_hard_assign_nearest(self):
        clusterer = DKMClusterer(DKMConfig(bits=2, iters=1))
        w = _weight_tensor(100)
        state = clusterer.refine(w)
        assignments = clusterer.hard_assign(w)
        flat = w.numpy().reshape(-1)
        expected = np.argmin(
            (flat[:, None] - state.centroids[None, :]) ** 2, axis=1
        )
        assert np.array_equal(assignments, expected)


class TestDensePath:
    def test_output_shape_and_dtype(self):
        clusterer = DKMClusterer(DKMConfig(bits=3))
        w = _weight_tensor(96, requires_grad=True)
        out = clusterer.cluster_dense(w)
        assert out.shape == w.shape
        assert out.dtype is w.dtype

    def test_output_near_weights(self):
        clusterer = DKMClusterer(DKMConfig(bits=4, iters=10))
        w = _weight_tensor(500)
        w.requires_grad = True
        out = clusterer.cluster_dense(w)
        err = np.mean((out.numpy() - w.numpy()) ** 2)
        assert err < np.var(w.numpy()) * 0.05

    def test_gradient_flows_to_weights(self):
        clusterer = DKMClusterer(DKMConfig(bits=3))
        w = _weight_tensor(200, requires_grad=True)
        out = clusterer.cluster_dense(w)
        (out * out).sum().backward()
        assert w.grad is not None
        assert float(np.abs(w.grad.numpy()).max()) > 0

    def test_2d_weight_supported(self):
        clusterer = DKMClusterer(DKMConfig(bits=3))
        w = rt.Tensor.from_numpy(
            np.random.default_rng(0).standard_normal((16, 8)).astype(np.float32) * 0.1,
            dtype="bfloat16",
            device="gpu",
            requires_grad=True,
        )
        out = clusterer.cluster_dense(w)
        assert out.shape == (16, 8)

    def test_table_reuse_keeps_recording_grads_bit_identical(self):
        """The dense fast path must never touch a grad-recording forward:
        grads with a parked attention table equal grads without one."""
        import repro.tensor.autograd as autograd

        def grads(evict_table):
            clusterer = DKMClusterer(DKMConfig(bits=3, iters=3))
            w = _weight_tensor(seed=5, requires_grad=True)
            with autograd.no_grad():
                clusterer.cluster_dense(w)  # parks the table (fast path)
            if evict_table:
                clusterer.fastpath.evict_products()  # pure seed recording
            out = clusterer.cluster_dense(w)
            (out * out).sum().backward()
            return w.grad.numpy()

        assert np.array_equal(grads(evict_table=False), grads(evict_table=True))

    def test_no_grad_single_block_served_from_table(self, monkeypatch):
        """Under no_grad with |W| in one block, the cached table replaces
        the whole primitive composition (no softmax is ever built)."""
        import repro.tensor.autograd as autograd
        import repro.tensor.ops as ops_module

        calls = {"softmax": 0}
        original = ops_module.softmax

        def counting(*args, **kwargs):
            calls["softmax"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(ops_module, "softmax", counting)
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=3))
        w = _weight_tensor(seed=6)
        with autograd.no_grad():
            fast = clusterer.cluster_dense(w)
        assert calls["softmax"] == 0
        assert clusterer.fastpath.stats.table_hits >= 1
        # The served values are the exact unique-space mixture.
        unique = clusterer.fastpath.uniquify(w, clusterer.config.weight_dtype)
        state = clusterer.state
        from repro.core.uniquify import attention_table

        table = attention_table(unique.values, state.centroids, state.temperature)
        expected = (table @ state.centroids)[unique.index_list.astype(np.int64)]
        np.testing.assert_allclose(
            fast.numpy(), expected.reshape(w.shape), rtol=1e-2, atol=1e-3
        )

    def test_no_grad_multi_block_keeps_composition(self, monkeypatch):
        """The fast path is gated to a single block: a chunked no-grad
        call still runs the bounded-buffer primitive composition."""
        import repro.tensor.autograd as autograd
        import repro.tensor.ops as ops_module

        calls = {"softmax": 0}
        original = ops_module.softmax

        def counting(*args, **kwargs):
            calls["softmax"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(ops_module, "softmax", counting)
        clusterer = DKMClusterer(DKMConfig(bits=3, iters=3))
        w = _weight_tensor(seed=6)
        with autograd.no_grad():
            chunked = clusterer.cluster_dense(w, row_chunk=512)
        assert calls["softmax"] == 4  # 2000 weights / 512 per block
        fresh = DKMClusterer(DKMConfig(bits=3, iters=3))
        with autograd.no_grad():
            fast = fresh.cluster_dense(_weight_tensor(seed=6))
        np.testing.assert_allclose(
            fast.numpy(), chunked.numpy(), rtol=1e-2, atol=1e-3
        )

    def test_saved_tensor_complexity_is_w_times_c(self):
        """The dense path saves O(|W|·|C|) tensors -- DKM's memory wall."""
        packed_bytes = []

        def pack(t):
            packed_bytes.append(t.storage.nbytes)
            return t

        clusterer = DKMClusterer(DKMConfig(bits=3))
        w = _weight_tensor(1000, requires_grad=True)
        with rt.saved_tensors_hooks(pack, lambda h: h):
            clusterer.cluster_dense(w)
        # At least one saved tensor has N*k*4 bytes (the attention map).
        assert max(packed_bytes) >= 1000 * 8 * 4
