"""Process-pool compression backend tests (see ``repro/core/procpool.py``).

The contract under test: ``backend="process"`` is *bit-identical* to
``backend="serial"`` -- centroids, assignments, palettized artifacts,
reconstruction errors, per-layer step-cache counters, and the gradients of
a subsequent training step -- across repeated sweeps (the warm-cache
path), while every shared-memory block the engine exports is verifiably
unlinked on ``close()`` and on any sweep error.
"""

import dataclasses
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    CompressorConfig,
    DKMConfig,
    ModelCompressor,
)
from repro.core.fastpath import StepCache
from repro.tensor.dtype import bfloat16
from repro.tensor.tensor import Tensor


class _Stack(nn.Module):
    def __init__(self, n_layers=4, in_f=32, out_f=24, seed=0):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(in_f, out_f, bias=False, rng=np.random.default_rng(seed + i)),
            )


def _compressor(backend, num_workers=2, n_layers=4, seed=0, **config_kwargs):
    stack = _Stack(n_layers=n_layers, seed=seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=3, iters=3),
        config=CompressorConfig(
            backend=backend, num_workers=num_workers, **config_kwargs
        ),
    )
    compressor.compress(stack)
    return compressor, stack


def _stats(compressor):
    return {
        name: dataclasses.asdict(wrapper.step_cache.stats)
        for name, wrapper in compressor.wrapped.items()
    }


def _assert_all_unlinked(names):
    assert names  # the engine must actually have exported something
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestBackendConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            CompressorConfig(backend="gpu")

    def test_unknown_mp_context_rejected(self):
        with pytest.raises(ValueError, match="mp_context"):
            CompressorConfig(mp_context="teleport")

    def test_negative_task_chunk_rejected(self):
        with pytest.raises(ValueError, match="task_chunk"):
            CompressorConfig(task_chunk=-1)

    def test_serial_backend_forces_one_worker(self):
        assert CompressorConfig(backend="serial", num_workers=8).resolve_workers(8) == 1

    def test_task_chunk_auto_is_one_batch_per_worker(self):
        config = CompressorConfig(backend="process", num_workers=3)
        assert config.resolve_task_chunk(9) == 3
        assert config.resolve_task_chunk(10) == 4
        assert CompressorConfig(task_chunk=2).resolve_task_chunk(10) == 2


class TestProcessEquivalence:
    def test_precluster_bit_identical_and_stats_match_over_two_sweeps(self):
        serial, _ = _compressor("serial")
        process, _ = _compressor("process")
        try:
            for sweep in range(2):  # second sweep exercises the warm path
                res_s = serial.precluster(compute_error=True)
                res_p = process.precluster(compute_error=True)
                assert list(res_s) == list(res_p)
                for name in res_s:
                    assert np.array_equal(
                        res_s[name].centroids, res_p[name].centroids
                    ), (sweep, name)
                    assert np.array_equal(
                        res_s[name].assignments, res_p[name].assignments
                    )
                    assert res_s[name].temperature == res_p[name].temperature
                    assert res_s[name].iterations_run == res_p[name].iterations_run
                    assert (
                        res_s[name].reconstruction_error
                        == res_p[name].reconstruction_error
                    )
                assert _stats(serial) == _stats(process), sweep
        finally:
            process.close()

    def test_refine_all_and_finalize_match_serial(self):
        serial, stack_s = _compressor("serial", seed=3)
        process, stack_p = _compressor("process", seed=3)
        try:
            states_s = serial.refine_all(cache_table=True)
            states_p = process.refine_all(cache_table=True)
            assert list(states_s) == list(states_p)
            for name in states_s:
                assert np.array_equal(
                    states_s[name].centroids, states_p[name].centroids
                )
                assert states_s[name].temperature == states_p[name].temperature
            report_s = serial.finalize(stack_s)
            report_p = process.finalize(stack_p)
            assert list(report_s.palettized) == list(report_p.palettized)
            for name, pal_s in report_s.palettized.items():
                pal_p = report_p.palettized[name]
                assert np.array_equal(pal_s.lut, pal_p.lut)
                assert np.array_equal(pal_s.packed, pal_p.packed)
            assert report_s.total_bytes == report_p.total_bytes
            assert _stats(serial) == _stats(process)
        finally:
            process.close()

    def test_training_grads_identical_after_process_sweep(self):
        serial, stack_s = _compressor("serial", n_layers=2, seed=7)
        process, stack_p = _compressor("process", n_layers=2, seed=7)
        try:
            serial.precluster()
            process.precluster()
            x = np.random.default_rng(11).standard_normal((5, 32)).astype(np.float32)
            for stack in (stack_s, stack_p):
                stack.train()
                out = stack.layer0(Tensor.from_numpy(x, device="gpu"))
                (out * out).sum().backward()
            grad_s = stack_s.layer0.inner.weight.grad
            grad_p = stack_p.layer0.inner.weight.grad
            assert grad_s is not None and grad_p is not None
            assert np.array_equal(grad_s.numpy(), grad_p.numpy())
            # The forward's table lookups and uniquify hits must also agree:
            # the process merge re-parked the carried attention table.
            assert _stats(serial) == _stats(process)
        finally:
            process.close()


class TestWorkerLifecycle:
    def test_shm_cleaned_after_close(self):
        process, _ = _compressor("process")
        process.precluster()
        names = process._engine.active_shm_names()
        process.close()
        _assert_all_unlinked(names)
        assert process._engine.active_shm_names() == []

    def test_poisoned_export_recovers_transparently(self):
        # A lost/unreachable shm block used to fail the sweep with a raw
        # FileNotFoundError; it now surfaces worker-side as the typed
        # ShmLost and the engine re-exports + re-ships without the caller
        # ever seeing an error.
        process, _ = _compressor("process")
        serial, _ = _compressor("serial")
        process.precluster()
        serial.precluster()
        engine = process._engine
        # Poison one layer's export: the worker's attach will fail exactly
        # as it would after an external unlink (a crashed/mis-cleaned peer).
        name = next(iter(process.wrapped))
        export = engine._state["exports"][name]
        poisoned_block = export.name
        export.handle = dataclasses.replace(
            export.handle, shm_name="repro_test_poisoned_block"
        )
        again = process.precluster()  # survives: ShmLost -> re-export
        reference = serial.precluster()
        for layer in reference:
            assert np.array_equal(reference[layer].centroids, again[layer].centroids)
        assert _stats(serial) == _stats(process)
        # The poisoned layer's original block was released during recovery...
        _assert_all_unlinked([poisoned_block])
        # ...and everything rebuilt in its place is cleaned up by close().
        names = engine.active_shm_names()
        assert names  # recovery re-exported live blocks
        process.close()
        _assert_all_unlinked(names)

    def test_context_manager_closes(self):
        process, _ = _compressor("process")
        with process:
            process.precluster()
            names = process._engine.active_shm_names()
        _assert_all_unlinked(names)

    def test_optimizer_write_triggers_reexport(self):
        process, _ = _compressor("process", n_layers=2)
        try:
            process.precluster()
            engine = process._engine
            name, wrapper = next(iter(process.wrapped.items()))
            old_handle = engine._state["exports"][name].handle
            # An in-place optimizer-style write bumps the storage version...
            wrapper.inner.weight.copy_(wrapper.inner.weight.numpy() * 0.5)
            wrapper.clusterer.state = None
            process.precluster()
            new_handle = engine._state["exports"][name].handle
            # ...so the stale block was replaced, not served.
            assert new_handle.shm_name != old_handle.shm_name
            assert new_handle.version > old_handle.version
        finally:
            process.close()


class TestPhantomStepCache:
    def _weights(self):
        values = np.random.default_rng(0).standard_normal(256).astype(np.float32)
        return Tensor.from_numpy(values * 0.1, dtype=bfloat16)

    def test_mark_computed_makes_next_uniquify_a_hit(self):
        weights = self._weights()
        cache = StepCache()
        cache.mark_computed(weights, bfloat16)
        assert cache.is_warm(weights, bfloat16)
        unique = cache.uniquify(weights, bfloat16)
        assert cache.stats.uniquify_hits == 1
        assert cache.stats.uniquify_misses == 0
        # Promoted to resident: the same object comes back.
        assert cache.uniquify(weights, bfloat16) is unique
        assert cache.stats.uniquify_hits == 2

    def test_mark_computed_keeps_resident_entry(self):
        weights = self._weights()
        cache = StepCache()
        unique = cache.uniquify(weights, bfloat16)
        cache.mark_computed(weights, bfloat16)
        assert cache.uniquify(weights, bfloat16) is unique

    def test_mark_computed_invalidated_by_version_bump(self):
        weights = self._weights()
        cache = StepCache()
        cache.mark_computed(weights, bfloat16)
        weights.copy_(weights.numpy() * 2.0)
        assert not cache.is_warm(weights, bfloat16)
        cache.uniquify(weights, bfloat16)
        assert cache.stats.uniquify_misses == 1

    def test_store_table_accepted_on_phantom_entry(self):
        weights = self._weights()
        reference = StepCache()
        unique = reference.uniquify(weights, bfloat16)
        centroids = np.linspace(-0.2, 0.2, 8, dtype=np.float32)
        from repro.core.uniquify import attention_table

        table = attention_table(unique.values, centroids, 0.01)
        cache = StepCache()
        cache.store_table(centroids, 0.01, table)  # no entry at all: ignored
        assert cache.lookup_table(centroids, 0.01) is None
        cache.mark_computed(weights, bfloat16)
        cache.store_table(centroids, 0.01, table)  # phantom entry: accepted
        assert cache.lookup_table(centroids, 0.01) is table

    def test_absorb_folds_counter_deltas(self):
        from repro.core.fastpath import FastPathStats

        cache = StepCache()
        cache.stats.uniquify_misses = 1
        cache.absorb(FastPathStats(uniquify_hits=2, table_hits=1, table_misses=3))
        assert cache.stats.uniquify_hits == 2
        assert cache.stats.uniquify_misses == 1
        assert cache.stats.table_hits == 1
        assert cache.stats.table_misses == 3
