"""Self-tests for the repolint static analyzer.

Fixture-driven: every rule gets at least one violating snippet (asserted
by finding ID *and* line) and one clean snippet, so a rule regression
shows up as a missed or spurious fixture finding rather than as CI noise
on real source.  Also covers suppression hygiene (RL001/RL002), baseline
round-trips, the CLI, the docs suite, and regression tests for the
source fixes the first triage of ``src/repro`` produced.
"""

from __future__ import annotations

import json
import os
import textwrap
import threading

import numpy as np

from repro.nn import Embedding, Linear, SwiGLUMLP
from repro.tensor.random import default_rng
from tools.repolint.baseline import load_baseline, write_baseline
from tools.repolint.cli import main as repolint_main
from tools.repolint.docs import run_docs_suite
from tools.repolint.engine import lint_source, run_code_suite
from tools.repolint.findings import Finding
from tools.repolint.rules.locks import collect_lock_classes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint(source: str, path: str = "src/repro/example.py"):
    """Lint a dedented snippet; returns (live, suppressed, meta)."""
    return lint_source(path, textwrap.dedent(source))


def ids_and_lines(findings) -> list[tuple[str, int]]:
    return [(f.rule, f.line) for f in findings]


class TestLockDiscipline:
    VIOLATING = """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def size(self):
                return len(self._items)
        """

    def test_unlocked_access_is_rl101(self):
        live, _, _ = lint(self.VIOLATING)
        assert ids_and_lines(live) == [("RL101", 13)]
        assert live[0].symbol == "Box.size"
        assert "_items" in live[0].message

    def test_locked_access_is_clean(self):
        live, _, _ = lint(
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def size(self):
                    with self._lock:
                        return len(self._items)
            """
        )
        assert live == []

    def test_private_helper_with_locked_callers_is_clean(self):
        live, _, _ = lint(
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _bump(self):
                    self._items.append(1)

                def add(self):
                    with self._lock:
                        self._bump()
            """
        )
        assert live == []

    def test_unlocked_call_to_guarded_helper_is_rl102(self):
        live, _, _ = lint(
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _bump(self):
                    self._items.append(1)

                def locked_add(self):
                    with self._lock:
                        self._bump()

                def unlocked_add(self):
                    self._bump()
            """
        )
        assert ("RL102", 16) in ids_and_lines(live)

    def test_condition_over_lock_counts_as_held(self):
        live, _, _ = lint(
            """\
            import threading

            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._pending = []

                def wait_nonempty(self):
                    with self._cond:
                        while not self._pending:
                            self._cond.wait()
            """
        )
        assert live == []

    def test_lockless_class_is_not_modeled(self):
        live, _, _ = lint(
            """\
            class Plain:
                def __init__(self):
                    self._items = []

                def size(self):
                    return len(self._items)
            """
        )
        assert live == []

    def test_disable_on_init_line_excludes_attribute(self):
        live, suppressed, meta = lint(
            """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0  # repolint: disable=RL101 read-only after init
                    self._items = []

                def hits(self):
                    return self._hits
            """
        )
        assert live == []
        assert meta == []

    def test_collect_lock_classes_model(self):
        tree_src = textwrap.dedent(self.VIOLATING)
        import ast

        models = collect_lock_classes(ast.parse(tree_src), tree_src)
        assert len(models) == 1
        assert models[0].name == "Box"
        assert models[0].lock_attrs == frozenset({"_lock"})
        assert models[0].guarded == frozenset({"_items"})


class TestVersionDiscipline:
    def test_inplace_write_without_bump_is_rl201(self):
        live, _, _ = lint(
            """\
            def scale(t, factor):
                t._np()[:] = t._np() * factor
            """
        )
        assert ids_and_lines(live) == [("RL201", 2)]

    def test_inplace_write_with_bump_is_clean(self):
        live, _, _ = lint(
            """\
            def scale(t, factor):
                t._np()[:] = t._np() * factor
                t.storage.bump_version()
            """
        )
        assert live == []

    def test_tainted_alias_is_tracked(self):
        live, _, _ = lint(
            """\
            def zero(t):
                buf = t._np()
                buf[:] = 0.0
            """
        )
        assert ids_and_lines(live) == [("RL201", 3)]

    def test_copyto_without_bump_is_rl202(self):
        live, _, _ = lint(
            """\
            import numpy as np

            def overwrite(t, values):
                np.copyto(t._np(), values)
            """
        )
        assert ids_and_lines(live) == [("RL202", 4)]

    def test_storage_module_is_exempt(self):
        live, _, _ = lint(
            """\
            def raw_write(t):
                t._np()[:] = 0.0
            """,
            path="src/repro/tensor/storage.py",
        )
        assert live == []


class TestDeterminism:
    def test_module_level_random_is_rl301(self):
        live, _, _ = lint(
            """\
            import numpy as np

            SHUFFLE = np.random.default_rng(0)
            """
        )
        assert ids_and_lines(live) == [("RL301", 3)]

    def test_random_home_module_is_exempt(self):
        live, _, _ = lint(
            """\
            import numpy as np

            _default_rng = np.random.default_rng(0)
            """,
            path="src/repro/tensor/random.py",
        )
        assert live == []

    def test_or_fallback_generator_is_rl302(self):
        live, _, _ = lint(
            """\
            import numpy as np

            def init(rng=None):
                rng = rng or np.random.default_rng(0)
                return rng
            """
        )
        assert ids_and_lines(live) == [("RL302", 4)]

    def test_seeded_local_generator_is_clean(self):
        live, _, _ = lint(
            """\
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                return rng
            """
        )
        assert live == []

    def test_clock_in_kernel_module_is_rl303(self):
        live, _, _ = lint(
            """\
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/core/fastpath.py",
        )
        assert ids_and_lines(live) == [("RL303", 4)]

    def test_clock_outside_kernel_module_is_clean(self):
        live, _, _ = lint(
            """\
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/serving/server.py",
        )
        assert live == []

    def test_set_iteration_is_rl304(self):
        live, _, _ = lint(
            """\
            def walk(names):
                for name in set(names):
                    print(name)
            """
        )
        assert ids_and_lines(live) == [("RL304", 2)]

    def test_sorted_set_iteration_is_clean(self):
        live, _, _ = lint(
            """\
            def walk(names):
                for name in sorted(set(names)):
                    print(name)
            """
        )
        assert live == []


class TestResourceLifecycle:
    def test_bare_local_shm_is_rl401(self):
        live, _, _ = lint(
            """\
            from multiprocessing import shared_memory

            def probe(name):
                block = shared_memory.SharedMemory(name=name)
                block.close()
            """
        )
        assert ids_and_lines(live) == [("RL401", 4)]

    def test_with_block_is_clean(self):
        live, _, _ = lint(
            """\
            from concurrent.futures import ThreadPoolExecutor

            def run(fn):
                with ThreadPoolExecutor(max_workers=2) as pool:
                    return pool.submit(fn).result()
            """
        )
        assert live == []

    def test_try_finally_disposal_is_clean(self):
        live, _, _ = lint(
            """\
            from multiprocessing import shared_memory

            def probe(name):
                block = shared_memory.SharedMemory(name=name)
                try:
                    return block.size
                finally:
                    block.close()
            """
        )
        assert live == []

    def test_returned_resource_is_clean(self):
        live, _, _ = lint(
            """\
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        assert live == []

    def test_self_attribute_is_clean(self):
        live, _, _ = lint(
            """\
            from concurrent.futures import ProcessPoolExecutor

            class Engine:
                def __init__(self):
                    self._pool = ProcessPoolExecutor(max_workers=2)
            """
        )
        assert live == []


class TestJoinTimeout:
    SERVING_PATH = "src/repro/serving/example.py"

    HUNG_JOIN = """\
        class Server:
            def stop(self):
                self._thread.join()
        """

    def test_timeoutless_join_in_serving_is_rl402(self):
        live, _, _ = lint(self.HUNG_JOIN, path=self.SERVING_PATH)
        assert ids_and_lines(live) == [("RL402", 3)]

    def test_join_with_timeout_is_clean(self):
        live, _, _ = lint(
            """\
            class Server:
                def stop(self):
                    self._thread.join(timeout=5.0)
            """,
            path=self.SERVING_PATH,
        )
        assert live == []

    def test_join_with_positional_deadline_is_clean(self):
        live, _, _ = lint(
            """\
            class Server:
                def stop(self):
                    self._thread.join(5.0)
            """,
            path=self.SERVING_PATH,
        )
        assert live == []

    def test_str_join_is_out_of_scope(self):
        live, _, _ = lint(
            """\
            def render(parts):
                return " ".join(parts)
            """,
            path=self.SERVING_PATH,
        )
        assert live == []

    def test_outside_serving_is_out_of_scope(self):
        live, _, _ = lint(self.HUNG_JOIN, path="src/repro/core/example.py")
        assert live == []

    def test_suppressed_with_reason(self):
        live, suppressed, _ = lint(
            """\
            class Server:
                def stop(self):
                    self._thread.join()  # repolint: disable=RL402 scheduler exits on _stop; bounded by test timeout
            """,
            path=self.SERVING_PATH,
        )
        assert live == []
        assert suppressed == 1


class TestSuppressions:
    def test_same_line_disable_suppresses(self):
        live, suppressed, meta = lint(
            """\
            def walk(names):
                for name in set(names):  # repolint: disable=RL304 order-free side effects
                    print(name)
            """
        )
        assert live == []
        assert suppressed == 1
        assert meta == []

    def test_line_above_disable_suppresses(self):
        live, suppressed, meta = lint(
            """\
            def walk(names):
                # repolint: disable=RL304 order-free side effects
                for name in set(names):
                    print(name)
            """
        )
        assert live == []
        assert suppressed == 1
        assert meta == []

    def test_unknown_rule_is_rl001(self):
        _, _, meta = lint(
            """\
            def walk(names):
                for name in set(names):  # repolint: disable=RL999 whatever
                    print(name)
            """
        )
        assert [(f.rule) for f in meta] == ["RL001"]

    def test_missing_reason_is_rl001(self):
        _, _, meta = lint(
            """\
            def walk(names):
                for name in set(names):  # repolint: disable=RL304
                    print(name)
            """
        )
        assert [(f.rule, f.line) for f in meta] == [("RL001", 2)]

    def test_unused_disable_is_rl002(self):
        live, suppressed, meta = lint(
            """\
            def walk(names):
                for name in sorted(names):  # repolint: disable=RL304 just in case
                    print(name)
            """
        )
        assert live == []
        assert [(f.rule, f.line) for f in meta] == [("RL002", 2)]

    def test_disable_file_scope(self):
        live, suppressed, meta = lint(
            """\
            # repolint: disable-file=RL304 ordering is irrelevant in this module

            def walk(names):
                for name in set(names):
                    print(name)

            def walk2(names):
                for name in frozenset(names):
                    print(name)
            """
        )
        assert live == []
        assert suppressed == 2
        assert meta == []


class TestBaseline:
    SOURCE = textwrap.dedent(
        """\
        def walk(names):
            for name in set(names):
                print(name)
        """
    )

    def _tree(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "mod.py").write_text(self.SOURCE)
        return tmp_path

    def test_round_trip_grandfathers_findings(self, tmp_path):
        root = self._tree(tmp_path)
        baseline_path = str(tmp_path / "baseline.json")
        first = run_code_suite([str(root / "src")], str(root))
        assert [f.rule for f in first.findings] == ["RL304"]
        write_baseline(baseline_path, first.findings)

        # Unjustified entries refuse to gate anything.
        unjustified = load_baseline(baseline_path)
        blocked = run_code_suite(
            [str(root / "src")], str(root), baseline=unjustified
        )
        assert not blocked.ok
        assert "without justification" in blocked.errors[0]

        # Justified entries grandfather the finding.
        raw = json.loads(open(baseline_path).read())
        for entry in raw["entries"]:
            entry["justification"] = "legacy walker; burn-down tracked"
        with open(baseline_path, "w") as fh:
            json.dump(raw, fh)
        gated = run_code_suite(
            [str(root / "src")], str(root), baseline=load_baseline(baseline_path)
        )
        assert gated.ok
        assert gated.baselined == 1
        assert gated.findings == []

    def test_stale_entry_is_an_error(self, tmp_path):
        root = self._tree(tmp_path)
        baseline_path = str(tmp_path / "baseline.json")
        first = run_code_suite([str(root / "src")], str(root))
        write_baseline(baseline_path, first.findings)
        raw = json.loads(open(baseline_path).read())
        for entry in raw["entries"]:
            entry["justification"] = "x"
        with open(baseline_path, "w") as fh:
            json.dump(raw, fh)
        (root / "src" / "mod.py").write_text(
            "def walk(names):\n    for name in sorted(names):\n        print(name)\n"
        )
        gated = run_code_suite(
            [str(root / "src")], str(root), baseline=load_baseline(baseline_path)
        )
        assert not gated.ok
        assert "stale baseline entry" in gated.errors[0]

    def test_finding_key_is_line_independent(self):
        a = Finding(rule="RL304", path="p.py", line=3, message="m", symbol="s")
        b = Finding(rule="RL304", path="p.py", line=9, message="m", symbol="s")
        c = Finding(rule="RL303", path="p.py", line=3, message="m", symbol="s")
        assert a.key == b.key
        assert a.key != c.key


class TestCli:
    def test_repo_gate_is_clean(self, capsys):
        code = repolint_main(
            [
                "src",
                "--baseline",
                os.path.join(REPO_ROOT, "tools/repolint/baseline.json"),
                "--root",
                REPO_ROOT,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_json_format_and_report_artifact(self, tmp_path, capsys):
        src = tmp_path / "mod.py"
        src.write_text(self.racy_snippet())
        report_path = str(tmp_path / "report.json")
        code = repolint_main(
            [
                str(src),
                "--root",
                str(tmp_path),
                "--format",
                "json",
                "--report",
                report_path,
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert [f["rule"] for f in payload["findings"]] == ["RL304"]
        on_disk = json.loads(open(report_path).read())
        assert on_disk == payload

    def test_list_rules(self, capsys):
        assert repolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL101", "RL201", "RL301", "RL401"):
            assert rule_id in out

    def test_missing_path_is_usage_error(self, capsys):
        assert repolint_main(["definitely/not/here"]) == 2

    @staticmethod
    def racy_snippet() -> str:
        return "def walk(names):\n    for name in set(names):\n        print(name)\n"


class TestDocsSuite:
    def test_repo_docs_are_clean(self):
        report = run_docs_suite(REPO_ROOT)
        assert report.ok, report.render_text()

    def test_broken_link_is_doc001(self, tmp_path):
        (tmp_path / "README.md").write_text("see [the plan](docs/missing.md)\n")
        report = run_docs_suite(str(tmp_path))
        assert [(f.rule, f.path, f.line) for f in report.findings] == [
            ("DOC001", "README.md", 1)
        ]

    def test_missing_docstrings_are_doc1xx(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "class Widget:\n"
            "    def spin(self):\n"
            "        pass\n"
            "\n"
            "def helper():\n"
            "    pass\n"
        )
        report = run_docs_suite(str(tmp_path))
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["DOC100", "DOC101", "DOC102", "DOC103"]

    def test_cli_all_suite(self, capsys):
        code = repolint_main(
            [
                "src",
                "--suite",
                "all",
                "--baseline",
                os.path.join(REPO_ROOT, "tools/repolint/baseline.json"),
                "--root",
                REPO_ROOT,
            ]
        )
        assert code == 0, capsys.readouterr().out


class TestTriageRegressions:
    """Regression tests for the fixes the first src/repro triage produced."""

    def test_tracker_counters_consistent_under_concurrent_readers(self):
        from repro.memory.tracker import MemoryTracker

        tracker = MemoryTracker("test")
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                # Property reads now lock; repr reads two fields atomically.
                assert tracker.current_bytes >= 0
                repr(tracker)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(2000):
                tracker.allocate(64)
                tracker.release(64)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert tracker.current_bytes == 0
        assert tracker.alloc_count == tracker.free_count == 2000

    def test_marshal_registry_concurrent_register_and_find(self):
        from repro.core.marshal import MarshalRegistry, OffloadEntry
        from repro.tensor.tensor import Tensor

        registry = MarshalRegistry()
        tensors = [
            Tensor.from_numpy(np.full((4,), float(i), dtype=np.float32))
            for i in range(16)
        ]
        entries = {
            id(t): OffloadEntry(t, t.storage, t.device) for t in tensors
        }
        errors: list[BaseException] = []

        def worker(offset: int):
            try:
                for tensor in tensors[offset::2]:
                    registry.register(tensor, entries[id(tensor)])
                    entry, _, _ = registry.find(tensor, 0, "storage-id")
                    assert entry is entries[id(tensor)]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(offset,)) for offset in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(registry) == 16
        registry.clear()
        assert len(registry) == 0

    def test_default_rng_seeded_is_fresh_and_bit_stable(self):
        a = default_rng(7)
        b = default_rng(7)
        assert a is not b
        assert np.array_equal(a.standard_normal(8), b.standard_normal(8))
        # Matches the idiom the nn modules used to spell inline.
        assert np.array_equal(
            default_rng(0).standard_normal(4),
            np.random.default_rng(0).standard_normal(4),
        )

    def test_default_rng_unseeded_is_the_shared_generator(self):
        assert default_rng() is default_rng()

    def test_module_default_init_bit_identity(self):
        first = Linear(8, 4, rng=None)
        second = Linear(8, 4, rng=None)
        assert np.array_equal(first.weight.numpy(), second.weight.numpy())
        emb_a = Embedding(12, 6)
        emb_b = Embedding(12, 6)
        assert np.array_equal(emb_a.weight.numpy(), emb_b.weight.numpy())
        mlp_a = SwiGLUMLP(8, 16)
        mlp_b = SwiGLUMLP(8, 16)
        assert np.array_equal(
            mlp_a.down_proj.weight.numpy(), mlp_b.down_proj.weight.numpy()
        )

    def test_repolint_gate_matches_ci_invocation(self):
        report = run_code_suite(
            [os.path.join(REPO_ROOT, "src")],
            REPO_ROOT,
            baseline=load_baseline(
                os.path.join(REPO_ROOT, "tools/repolint/baseline.json")
            ),
        )
        assert report.ok, report.render_text()
        assert report.findings == []
