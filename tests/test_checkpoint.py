"""Crash-safe checkpoint/resume tests (see ``repro/core/checkpoint.py``).

The contract under test: ``save_checkpoint`` + ``resume`` restarts a
compression run *bit-identically* -- a run killed after sweep N and
resumed into a fresh process-equivalent compressor produces the same
centroids, palettized artifacts, and step-cache counters as a run that
was never interrupted -- while the file format is atomic (tmp + rename),
digest-verified, config-pinned, and journaled.
"""

import dataclasses
import json

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (
    CompressorConfig,
    DKMConfig,
    ModelCompressor,
    RobustnessWarning,
)
from repro.core.checkpoint import (
    CheckpointCorrupt,
    CheckpointError,
    read_checkpoint,
)


class _Stack(nn.Module):
    def __init__(self, n_layers=3, in_f=32, out_f=24, seed=0):
        super().__init__()
        for i in range(n_layers):
            setattr(
                self,
                f"layer{i}",
                nn.Linear(in_f, out_f, bias=False, rng=np.random.default_rng(seed + i)),
            )


def _compressor(backend="serial", n_layers=3, seed=0, bits=3, **config_kwargs):
    stack = _Stack(n_layers=n_layers, seed=seed)
    stack.to("gpu")
    compressor = ModelCompressor(
        DKMConfig(bits=bits, iters=3),
        config=CompressorConfig(backend=backend, num_workers=2, **config_kwargs),
    )
    compressor.compress(stack)
    return compressor, stack


def _stats(compressor):
    return {
        name: dataclasses.asdict(wrapper.step_cache.stats)
        for name, wrapper in compressor.wrapped.items()
    }


def _centroids(results):
    return {name: result.centroids for name, result in results.items()}


class TestRoundTrip:
    def test_resume_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        # Uninterrupted reference: three sweeps straight through.
        reference, _ = _compressor()
        reference.precluster()
        reference.precluster()
        ref_final = _centroids(reference.precluster())
        # Interrupted run: one sweep, checkpoint, "crash", resume into a
        # *fresh* compressor over identical weights, two more sweeps.
        first, _ = _compressor()
        first.precluster()
        digest = first.save_checkpoint(path)
        assert digest
        resumed, _ = _compressor()  # fresh process stands in for a restart
        payload = resumed.resume(path)
        assert payload["sweeps_completed"] == 1
        assert resumed.sweeps_completed == 1
        resumed.precluster()
        res_final = _centroids(resumed.precluster())
        for name in ref_final:
            assert np.array_equal(ref_final[name], res_final[name]), name
        # Counters too: the resumed run continued the sequence exactly.
        assert _stats(reference) == _stats(resumed)

    def test_resume_into_process_backend_stays_identical(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        reference, _ = _compressor()
        for _ in range(3):
            ref_final = _centroids(reference.precluster())
        first, _ = _compressor("process")
        try:
            first.precluster()
            first.save_checkpoint(path)
        finally:
            first.close()
        resumed, _ = _compressor("process")
        try:
            resumed.resume(path)
            resumed.precluster()
            res_final = _centroids(resumed.precluster())
            for name in ref_final:
                assert np.array_equal(ref_final[name], res_final[name]), name
            assert _stats(reference) == _stats(resumed)
        finally:
            resumed.close()

    def test_exact_float_round_trip(self, tmp_path):
        """Centroids and temperature survive the JSON round trip to the
        last ulp (hex-encoded IEEE-754 bytes, not decimal repr)."""
        path = str(tmp_path / "ckpt.json")
        first, _ = _compressor()
        first.precluster()
        states = {
            name: (
                wrapper.clusterer.state.centroids.copy(),
                wrapper.clusterer.state.temperature,
                wrapper.clusterer.state.iterations_run,
            )
            for name, wrapper in first.wrapped.items()
        }
        first.save_checkpoint(path)
        resumed, _ = _compressor()
        resumed.resume(path)
        for name, wrapper in resumed.wrapped.items():
            centroids, temperature, iterations = states[name]
            state = wrapper.clusterer.state
            assert np.array_equal(state.centroids, centroids)
            assert state.temperature == temperature
            assert state.iterations_run == iterations


class TestDurability:
    def test_no_tmp_file_left_behind(self, tmp_path):
        compressor, _ = _compressor()
        compressor.precluster()
        path = str(tmp_path / "ckpt.json")
        compressor.save_checkpoint(path)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert sorted(leftovers) == ["ckpt.json", "ckpt.json.journal"]

    def test_save_overwrites_atomically(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor()
        compressor.precluster()
        digest_1 = compressor.save_checkpoint(path)
        compressor.precluster()
        digest_2 = compressor.save_checkpoint(path)
        assert digest_1 != digest_2
        assert read_checkpoint(path)["digest"] == digest_2

    def test_journal_records_every_save(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor()
        compressor.precluster()
        compressor.save_checkpoint(path)
        compressor.precluster()
        compressor.save_checkpoint(path)
        lines = [
            json.loads(line)
            for line in open(f"{path}.journal", encoding="utf-8")
        ]
        assert [line["sweeps_completed"] for line in lines] == [1, 2]
        assert all(line["digest"] for line in lines)

    def test_corrupt_payload_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor()
        compressor.precluster()
        compressor.save_checkpoint(path)
        payload = json.load(open(path, encoding="utf-8"))
        payload["sweeps_completed"] = 99  # tamper without re-digesting
        json.dump(payload, open(path, "w", encoding="utf-8"))
        with pytest.raises(CheckpointCorrupt, match="digest"):
            read_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor()
        compressor.precluster()
        compressor.save_checkpoint(path)
        data = open(path, encoding="utf-8").read()
        open(path, "w", encoding="utf-8").write(data[: len(data) // 2])
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointCorrupt, match="cannot read"):
            read_checkpoint(str(tmp_path / "nope.json"))


class TestCompatibilityPins:
    def test_config_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor(bits=3)
        compressor.precluster()
        compressor.save_checkpoint(path)
        other, _ = _compressor(bits=4)
        with pytest.raises(CheckpointError, match="config"):
            other.resume(path)

    def test_layer_set_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor(n_layers=3)
        compressor.precluster()
        compressor.save_checkpoint(path)
        other, _ = _compressor(n_layers=4)
        with pytest.raises(CheckpointError, match="layer set"):
            other.resume(path)

    def test_degraded_run_resumes_degraded(self, tmp_path):
        """A checkpoint written after a process->thread demotion restores
        the demotion: resume never silently re-promotes onto
        infrastructure that already failed."""
        path = str(tmp_path / "ckpt.json")
        compressor, _ = _compressor("process")
        try:
            compressor.precluster()
            with pytest.warns(RobustnessWarning):
                compressor._demote(
                    "process", RuntimeError("simulated node fault")
                )
            compressor.save_checkpoint(path)
        finally:
            compressor.close()
        resumed, _ = _compressor("process")
        resumed.resume(path)
        assert resumed.active_backend == "thread"
