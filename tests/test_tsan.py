"""Self-tests for the ThreadSanitizer-lite runtime mode.

The deliberately-racy fixture class is caught when instrumented; clean
locked usage stays silent; and the ``REPRO_TSAN=1`` session-level switch
is validated in whichever direction the current session runs (CI runs
the concurrency suite both ways, so both branches execute there).
"""

from __future__ import annotations

import threading

import pytest

from tools.repolint import tsan


class _RacyCounter:
    """Fixture class: guarded count, one method that skips the lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def locked_bump(self) -> None:
        with self._lock:
            self._count += 1

    def racy_bump(self) -> None:
        self._count += 1  # the bug tsan must catch

    def racy_read(self) -> int:
        return self._count


class _CondQueue:
    """Fixture mirroring RequestQueue: a Condition over the same lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items: list[int] = []

    def put(self, item: int) -> None:
        with self._lock:
            self._items.append(item)
            self._ready.notify()

    def get(self, timeout: float) -> int:
        with self._ready:
            self._ready.wait_for(lambda: self._items, timeout=timeout)
            return self._items.pop(0)


@pytest.fixture
def _fresh_violations():
    """Isolate and then drop this test's recorded violations.

    Dropping matters: the autouse ``_tsan_check`` fixture fails any test
    that leaves new violations behind, and these tests *provoke*
    violations on purpose.
    """
    watermark = tsan.violation_count()
    yield lambda: tsan.violations_since(watermark)
    tsan.clear_violations()


def _instrumented_counter_class():
    # Instrument a throwaway subclass so the module-level fixture class
    # stays pristine for other tests (instrument_class mutates the class).
    cls = type("RacyCounterX", (_RacyCounter,), {})
    tsan.instrument_class(
        cls, guarded=frozenset({"_count"}), lock_attrs=frozenset({"_lock"})
    )
    return cls


class TestTrackedLock:
    def test_ownership_tracking(self):
        lock = tsan.TrackedLock(threading.Lock())
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_other_thread_is_not_owner(self):
        lock = tsan.TrackedLock(threading.Lock())
        seen: list[bool] = []
        with lock:
            other = threading.Thread(
                target=lambda: seen.append(lock.held_by_current_thread())
            )
            other.start()
            other.join()
        assert seen == [False]

    def test_rlock_reentrancy(self):
        lock = tsan.TrackedLock(threading.RLock())
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()


class TestInstrumentation:
    def test_racy_access_is_caught(self, _fresh_violations):
        counter = _instrumented_counter_class()()
        counter.locked_bump()
        assert _fresh_violations() == []
        counter.racy_bump()
        new = _fresh_violations()
        assert len(new) >= 1
        assert {v.attr for v in new} == {"_count"}
        assert {v.cls for v in new} == {"RacyCounterX"}
        assert {"read", "write"} >= {v.op for v in new}

    def test_racy_read_is_caught(self, _fresh_violations):
        counter = _instrumented_counter_class()()
        counter.racy_read()
        new = _fresh_violations()
        assert [v.op for v in new] == ["read"]

    def test_clean_locked_usage_is_silent(self, _fresh_violations):
        counter = _instrumented_counter_class()()
        for _ in range(50):
            counter.locked_bump()
        with counter._lock:
            assert counter._count == 50
        assert _fresh_violations() == []

    def test_uninstrumented_class_records_nothing(self, _fresh_violations):
        counter = _RacyCounter()
        counter.racy_bump()
        assert _fresh_violations() == []

    def test_instrumentation_is_idempotent(self, _fresh_violations):
        cls = _instrumented_counter_class()
        init_before = cls.__init__
        tsan.instrument_class(
            cls, guarded=frozenset({"_count"}), lock_attrs=frozenset({"_lock"})
        )
        assert cls.__init__ is init_before

    def test_condition_wait_notify_stays_clean(self, _fresh_violations):
        cls = type("CondQueueX", (_CondQueue,), {})
        tsan.instrument_class(
            cls,
            guarded=frozenset({"_items"}),
            lock_attrs=frozenset({"_lock", "_ready"}),
        )
        queue = cls()
        results: list[int] = []

        def consumer():
            results.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.put(41)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [41]
        assert _fresh_violations() == []

    def test_cross_thread_race_attributed(self, _fresh_violations):
        counter = _instrumented_counter_class()()
        thread = threading.Thread(target=counter.racy_bump, name="racer")
        thread.start()
        thread.join()
        assert any(v.thread == "racer" for v in _fresh_violations())


class TestSessionSwitch:
    def test_enabled_tracks_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TSAN", "1")
        assert tsan.enabled()
        monkeypatch.delenv("REPRO_TSAN")
        assert not tsan.enabled()

    @pytest.mark.skipif(
        not tsan.enabled(), reason="session not running under REPRO_TSAN=1"
    )
    def test_repo_classes_instrumented_when_enabled(self):
        from repro.core.fastpath import StepCache
        from repro.memory.tracker import MemoryTracker
        from repro.serving.queue import RequestQueue

        for cls in (StepCache, MemoryTracker, RequestQueue):
            assert getattr(cls, "_tsan_instrumented", False), cls

    @pytest.mark.skipif(
        tsan.enabled(), reason="session running under REPRO_TSAN=1"
    )
    def test_repo_classes_untouched_when_disabled(self):
        from repro.core.fastpath import StepCache
        from repro.memory.tracker import MemoryTracker
        from repro.serving.queue import RequestQueue

        for cls in (StepCache, MemoryTracker, RequestQueue):
            assert not getattr(cls, "_tsan_instrumented", False), cls

    @pytest.mark.skipif(
        not tsan.enabled(), reason="session not running under REPRO_TSAN=1"
    )
    def test_instrumented_tracker_catches_injected_race(
        self, _fresh_violations
    ):
        """End-to-end: a real repo class, a real unlocked poke, a report."""
        from repro.memory.tracker import MemoryTracker

        tracker = MemoryTracker("tsan-probe")
        tracker.allocate(128)
        assert _fresh_violations() == []
        object.__getattribute__(tracker, "__dict__")  # dunder path: silent
        tracker.__dict__  # guarded names only -- still silent
        # Bypass the property (which locks) and read the raw attribute.
        _ = tracker._current
        assert {v.attr for v in _fresh_violations()} == {"_current"}
