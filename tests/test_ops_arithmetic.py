"""Forward values and gradients of elementwise and matmul ops."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.tensor import ops

from tests.gradcheck import check_gradients


def _arr(shape, seed=0, scale=1.0, offset=0.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale + offset).astype(np.float32)


class TestForwardValues:
    def test_add_sub_mul_div(self):
        a, b = rt.tensor([1.0, 2.0]), rt.tensor([3.0, 5.0])
        assert np.allclose((a + b).numpy(), [4, 7])
        assert np.allclose((a - b).numpy(), [-2, -3])
        assert np.allclose((a * b).numpy(), [3, 10])
        assert np.allclose((a / b).numpy(), [1 / 3, 2 / 5])

    def test_scalar_operands(self):
        a = rt.tensor([2.0, 4.0])
        assert np.allclose((a + 1).numpy(), [3, 5])
        assert np.allclose((1 + a).numpy(), [3, 5])
        assert np.allclose((a - 1).numpy(), [1, 3])
        assert np.allclose((10 - a).numpy(), [8, 6])
        assert np.allclose((a * 3).numpy(), [6, 12])
        assert np.allclose((a / 2).numpy(), [1, 2])
        assert np.allclose((8 / a).numpy(), [4, 2])

    def test_neg_pow_abs(self):
        a = rt.tensor([-2.0, 3.0])
        assert np.allclose((-a).numpy(), [2, -3])
        assert np.allclose((a**2).numpy(), [4, 9])
        assert np.allclose(a.abs().numpy(), [2, 3])

    def test_exp_log_sqrt(self):
        a = rt.tensor([1.0, 4.0])
        assert np.allclose(a.exp().numpy(), np.exp([1, 4]), rtol=1e-6)
        assert np.allclose(a.log().numpy(), np.log([1, 4]), rtol=1e-6)
        assert np.allclose(a.sqrt().numpy(), [1, 2])

    def test_clip(self):
        a = rt.tensor([-2.0, 0.5, 3.0])
        assert np.allclose(a.clip(-1, 1).numpy(), [-1, 0.5, 1])
        assert np.allclose(a.clip(low=0).numpy(), [0, 0.5, 3])

    def test_broadcasting(self):
        a = rt.tensor(_arr((3, 1)))
        b = rt.tensor(_arr((1, 4), seed=1))
        assert (a + b).shape == (3, 4)
        assert np.allclose((a + b).numpy(), a.numpy() + b.numpy())

    def test_comparisons_produce_bool(self):
        a, b = rt.tensor([1.0, 2.0]), rt.tensor([2.0, 2.0])
        assert (a < b).dtype is rt.bool_
        assert np.array_equal((a < b).numpy(), [True, False])
        assert np.array_equal((a == b).numpy(), [False, True])
        assert np.array_equal((a >= 2).numpy(), [False, True])

    def test_mixed_device_raises(self):
        a = rt.zeros(2, device="gpu")
        b = rt.zeros(2, device="cpu")
        with pytest.raises(RuntimeError, match="same device"):
            _ = a + b

    def test_dtype_promotion_in_binary_op(self):
        a = rt.tensor(_arr(4), dtype="float16")
        b = rt.tensor(_arr(4, seed=1), dtype="float32")
        assert (a + b).dtype is rt.float32


class TestGradients:
    def test_add_grad(self):
        check_gradients(lambda ts: ts[0] + ts[1], [_arr((2, 3)), _arr((2, 3), 1)])

    def test_add_broadcast_grad(self):
        check_gradients(lambda ts: ts[0] + ts[1], [_arr((2, 3)), _arr((3,), 1)])

    def test_sub_grad(self):
        check_gradients(lambda ts: ts[0] - ts[1], [_arr((2, 2)), _arr((2, 2), 1)])

    def test_mul_grad(self):
        check_gradients(lambda ts: ts[0] * ts[1], [_arr((3,)), _arr((3,), 1)])

    def test_mul_scalar_grad(self):
        check_gradients(lambda ts: ts[0] * 2.5, [_arr((3,))])

    def test_self_multiplication_grad(self):
        check_gradients(lambda ts: ts[0] * ts[0], [_arr((3,))])

    def test_div_grad(self):
        check_gradients(
            lambda ts: ts[0] / ts[1],
            [_arr((3,)), _arr((3,), 1, scale=0.2, offset=2.0)],
        )

    def test_pow_grad(self):
        check_gradients(lambda ts: ts[0] ** 3, [_arr((4,), offset=2.0, scale=0.3)])

    def test_exp_grad(self):
        check_gradients(lambda ts: ts[0].exp(), [_arr((4,), scale=0.5)])

    def test_log_grad(self):
        check_gradients(lambda ts: ts[0].log(), [_arr((4,), scale=0.1, offset=2.0)])

    def test_sqrt_grad(self):
        check_gradients(lambda ts: ts[0].sqrt(), [_arr((4,), scale=0.2, offset=3.0)])

    def test_abs_grad(self):
        check_gradients(lambda ts: ts[0].abs(), [_arr((4,), offset=1.5, scale=0.3)])

    def test_clip_grad_passes_inside_range_only(self):
        a = rt.tensor([-2.0, 0.5, 3.0], requires_grad=True)
        a.clip(-1, 1).sum().backward()
        assert np.array_equal(a.grad.numpy(), [0.0, 1.0, 0.0])

    def test_neg_grad(self):
        check_gradients(lambda ts: -ts[0], [_arr((3,))])


class TestMatmul:
    def test_2d_matmul_value(self):
        a, b = _arr((3, 4)), _arr((4, 5), 1)
        out = rt.tensor(a) @ rt.tensor(b)
        assert np.allclose(out.numpy(), a @ b, rtol=1e-5)

    def test_batched_matmul_value(self):
        a, b = _arr((2, 3, 4)), _arr((2, 4, 5), 1)
        out = rt.tensor(a) @ rt.tensor(b)
        assert np.allclose(out.numpy(), a @ b, rtol=1e-5)

    def test_broadcast_batch_matmul(self):
        a, b = _arr((2, 3, 4)), _arr((4, 5), 1)
        out = rt.tensor(a) @ rt.tensor(b)
        assert out.shape == (2, 3, 5)
        assert np.allclose(out.numpy(), a @ b, rtol=1e-5)

    def test_vector_operands(self):
        a, b = _arr((4,)), _arr((4,), 1)
        assert np.allclose(
            ops.matmul(rt.tensor(a), rt.tensor(b)).numpy(), a @ b, rtol=1e-5
        )
        m = _arr((3, 4), 2)
        assert ops.matmul(rt.tensor(m), rt.tensor(b)).shape == (3,)
        assert ops.matmul(rt.tensor(a), rt.tensor(m.T)).shape == (3,)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            _ = rt.zeros(2, 3) @ rt.zeros(4, 5)

    def test_matmul_grad(self):
        check_gradients(
            lambda ts: ts[0] @ ts[1], [_arr((2, 3)), _arr((3, 2), 1)]
        )

    def test_batched_matmul_grad(self):
        check_gradients(
            lambda ts: ts[0] @ ts[1], [_arr((2, 2, 3)), _arr((2, 3, 2), 1)]
        )

    def test_broadcast_matmul_grad(self):
        check_gradients(
            lambda ts: ts[0] @ ts[1], [_arr((2, 2, 3)), _arr((3, 2), 1)]
        )
