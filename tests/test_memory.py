"""Tests for memory trackers, traffic ledger, profiling and reports."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.memory import (
    MemoryTracker,
    TrafficLedger,
    format_bytes,
    footprint_table,
    global_ledger,
    profile_memory,
)


class TestMemoryTracker:
    def test_allocate_release(self):
        t = MemoryTracker("t")
        t.allocate(100)
        t.allocate(50)
        assert t.current_bytes == 150
        t.release(100)
        assert t.current_bytes == 50
        assert t.alloc_count == 2
        assert t.free_count == 1

    def test_peak_monotone(self):
        t = MemoryTracker("t")
        t.allocate(100)
        t.release(100)
        t.allocate(30)
        assert t.peak_bytes == 100

    def test_reset_peak(self):
        t = MemoryTracker("t")
        t.allocate(100)
        t.release(60)
        t.reset_peak()
        assert t.peak_bytes == 40

    def test_negative_amounts_rejected(self):
        t = MemoryTracker("t")
        with pytest.raises(ValueError):
            t.allocate(-1)
        with pytest.raises(ValueError):
            t.release(-1)

    def test_snapshot(self):
        t = MemoryTracker("snap")
        t.allocate(10)
        snap = t.snapshot()
        t.allocate(10)
        assert snap.current_bytes == 10
        assert snap.name == "snap"


class TestTrafficLedger:
    def test_record_and_totals(self):
        ledger = TrafficLedger()
        ledger.record("gpu", "cpu", 100)
        ledger.record("gpu", "cpu", 50)
        ledger.record("cpu", "gpu", 30)
        assert ledger.total_bytes("gpu", "cpu") == 150
        assert ledger.total_bytes("cpu", "gpu") == 30
        assert ledger.total_bytes() == 180
        assert ledger.transaction_count("gpu", "cpu") == 2

    def test_clear(self):
        ledger = TrafficLedger()
        ledger.record("a", "b", 1)
        ledger.clear()
        assert len(ledger) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficLedger().record("a", "b", -5)

    def test_tags_preserved(self):
        ledger = TrafficLedger()
        ledger.record("gpu", "cpu", 10, tag="offload")
        assert ledger.transfers()[0].tag == "offload"


class TestProfileMemory:
    def test_peak_delta_scoped_to_region(self):
        tracker = MemoryTracker("scope")
        tracker.allocate(1000)  # before the region
        with profile_memory([tracker]) as prof:
            tracker.allocate(500)
            tracker.release(500)
        assert prof.peak_delta("scope") == 500
        assert prof.retained_delta("scope") == 0

    def test_traffic_scoped_to_region(self):
        ledger = TrafficLedger()
        ledger.record("gpu", "cpu", 999)  # before
        tracker = MemoryTracker("x")
        with profile_memory([tracker], ledger) as prof:
            ledger.record("gpu", "cpu", 10)
            ledger.record("gpu", "cpu", 5)
        assert prof.traffic("gpu", "cpu") == 15
        assert prof.transactions("gpu", "cpu") == 2
        assert prof.traffic("cpu", "gpu") == 0

    def test_table1_semantics_end_to_end(self):
        """The paper's Table 1 numbers, byte-exact."""
        gpu, cpu = rt.GPU, rt.CPU
        with profile_memory([gpu.tracker, cpu.tracker], global_ledger()) as prof:
            x0 = rt.Tensor.from_numpy(
                np.zeros((1024, 1024), dtype=np.float32), device=gpu
            )
            x1 = x0.view(-1, 1)
            y0 = x0.to(cpu)
            y1 = x1.to(cpu)
            assert x1.shares_storage_with(x0)
            assert not y0.shares_storage_with(y1)
            retained_gpu = 4 * 1024 * 1024
            retained_cpu = 8 * 1024 * 1024
            del x0, x1, y0, y1
        assert prof.peak_delta("gpu") == retained_gpu
        assert prof.peak_delta("cpu") == retained_cpu
        assert prof.traffic("gpu", "cpu") == retained_cpu


class TestReport:
    def test_format_bytes(self):
        assert format_bytes(0) == "0.00 B"
        assert format_bytes(1024) == "1.00 KB"
        assert format_bytes(4 * 1024 * 1024) == "4.00 MB"
        assert format_bytes(-2048) == "-2.00 KB"
        assert "TB" in format_bytes(2**45)

    def test_footprint_table(self):
        t = MemoryTracker("dev0")
        t.allocate(2048)
        table = footprint_table([t])
        assert "dev0" in table
        assert "2.00 KB" in table
