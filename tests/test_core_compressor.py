"""Tests for model-level compression (ClusteredLinear + ModelCompressor)."""

import numpy as np
import pytest

import repro.tensor as rt
import repro.nn as nn
from repro.core import DKMConfig, ModelCompressor
from repro.core.compressor import ClusteredLinear, dequantized_state


def _linear(in_f=16, out_f=12, seed=0):
    layer = nn.Linear(in_f, out_f, bias=True, rng=np.random.default_rng(seed))
    layer.to("gpu")
    return layer


def _x(n=4, in_f=16, seed=1):
    return rt.Tensor.from_numpy(
        np.random.default_rng(seed).standard_normal((n, in_f)).astype(np.float32),
        device="gpu",
    )


class TestClusteredLinear:
    def test_weight_converted_to_16bit(self):
        wrapped = ClusteredLinear(_linear(), DKMConfig(bits=3))
        assert wrapped.inner.weight.dtype is rt.bfloat16

    def test_train_forward_shape(self):
        wrapped = ClusteredLinear(_linear(), DKMConfig(bits=3))
        assert wrapped(_x()).shape == (4, 12)

    def test_train_forward_approximates_original(self):
        layer = _linear()
        original = layer(_x()).numpy()
        wrapped = ClusteredLinear(layer, DKMConfig(bits=4, iters=10))
        clustered = wrapped(_x()).numpy()
        rel = np.mean((clustered - original) ** 2) / np.mean(original**2)
        assert rel < 0.05

    def test_gradient_reaches_master_weight(self):
        wrapped = ClusteredLinear(_linear(), DKMConfig(bits=3))
        out = wrapped(_x())
        (out * out).sum().backward()
        assert wrapped.inner.weight.grad is not None
        assert float(np.abs(wrapped.inner.weight.grad.numpy()).max()) > 0

    def test_eval_uses_hard_weights(self):
        wrapped = ClusteredLinear(_linear(), DKMConfig(bits=3, iters=8))
        wrapped.eval()
        out = wrapped(_x())
        # Hard weights: every weight is exactly one of 8 centroid values.
        hard = wrapped._hard_weight().numpy()
        assert len(np.unique(hard)) <= 8
        assert out.shape == (4, 12)

    def test_eval_cache_reused_and_invalidated(self):
        wrapped = ClusteredLinear(_linear(), DKMConfig(bits=3))
        wrapped.eval()
        first = wrapped._hard_weight()
        assert wrapped._hard_weight() is first
        wrapped.train()
        wrapped.eval()
        assert wrapped._hard_weight() is not first

    def test_palettize_artifact(self):
        wrapped = ClusteredLinear(_linear(), DKMConfig(bits=3, iters=8))
        wrapped(_x())  # initialize clustering state
        palette = wrapped.palettize()
        assert palette.bits == 3
        assert palette.shape == (12, 16)
        assert palette.lut.size == 8
        err = np.mean(
            (palette.dequantize() - wrapped.inner.weight.numpy().astype(np.float32))
            ** 2
        )
        assert err < np.var(wrapped.inner.weight.numpy()) * 0.1

    def test_uniquify_toggle_changes_path_not_output(self):
        layer_a, layer_b = _linear(seed=3), _linear(seed=3)
        a = ClusteredLinear(layer_a, DKMConfig(bits=3, iters=3), uniquify_enabled=True)
        b = ClusteredLinear(layer_b, DKMConfig(bits=3, iters=3), uniquify_enabled=False)
        assert np.allclose(a(_x()).numpy(), b(_x()).numpy(), atol=1e-5)


class TestModelCompressor:
    def _model(self):
        model = nn.Transformer(
            vocab_size=30, dim=16, n_layers=1, n_heads=2, hidden_dim=32, max_seq_len=8
        )
        model.to("gpu")
        return model

    def test_wraps_all_linears(self):
        model = self._model()
        compressor = ModelCompressor(DKMConfig(bits=3))
        compressor.compress(model)
        # 4 attention + 3 mlp + 1 head = 8 linears
        assert len(compressor.wrapped) == 8
        assert isinstance(model.lm_head, ClusteredLinear)
        assert isinstance(model.layers[0].attn.q_proj, ClusteredLinear)

    def test_skip_names(self):
        model = self._model()
        compressor = ModelCompressor(DKMConfig(bits=3), skip_names=("lm_head",))
        compressor.compress(model)
        assert not isinstance(model.lm_head, ClusteredLinear)
        assert len(compressor.wrapped) == 7

    def test_no_linears_raises(self):
        compressor = ModelCompressor(DKMConfig(bits=3))
        with pytest.raises(ValueError):
            compressor.compress(nn.RMSNorm(4))

    def test_compressed_model_still_runs(self):
        model = self._model()
        ModelCompressor(DKMConfig(bits=3)).compress(model)
        tokens = rt.Tensor.from_numpy(np.array([[1, 2, 3]]), device="gpu")
        assert model(tokens).shape == (1, 3, 30)

    def test_finalize_report(self):
        model = self._model()
        compressor = ModelCompressor(DKMConfig(bits=3), embedding_bits=8)
        compressor.compress(model)
        tokens = rt.Tensor.from_numpy(np.array([[1, 2, 3]]), device="gpu")
        model(tokens)
        report = compressor.finalize(model)
        # Every clustered linear palettized at 3 bits.
        for name in compressor.wrapped:
            assert report.palettized[name].bits == 3
        # Embedding palettized at 8 bits.
        assert report.palettized["embed.weight"].bits == 8
        # Norm weights kept at 16-bit.
        assert any("norm" in name for name in report.uncompressed)
        assert report.total_bytes > 0

    def test_finalize_smaller_than_fp16(self):
        model = self._model()
        compressor = ModelCompressor(DKMConfig(bits=3))
        compressor.compress(model)
        tokens = rt.Tensor.from_numpy(np.array([[1, 2]]), device="gpu")
        model(tokens)
        report = compressor.finalize(model)
        fp16_bytes = 2 * model.num_parameters()
        assert report.total_bytes < fp16_bytes / 3

    def test_dequantized_state(self):
        model = self._model()
        compressor = ModelCompressor(DKMConfig(bits=3))
        compressor.compress(model)
        tokens = rt.Tensor.from_numpy(np.array([[1, 2]]), device="gpu")
        model(tokens)
        report = compressor.finalize(model)
        state = dequantized_state(report)
        assert state["lm_head"].shape == (30, 16)

    def test_summary_renders(self):
        model = self._model()
        compressor = ModelCompressor(DKMConfig(bits=3))
        compressor.compress(model)
        tokens = rt.Tensor.from_numpy(np.array([[1, 2]]), device="gpu")
        model(tokens)
        report = compressor.finalize(model)
        text = report.summary()
        assert "TOTAL" in text
        assert "lm_head" in text
