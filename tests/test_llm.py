"""Tests for the LLM substrate: tokenizer, presets, generation, fine-tuning."""

import numpy as np
import pytest

import repro.tensor as rt
from repro.core import EDKMConfig, SavedTensorPipeline
from repro.data import corpus_batches
from repro.llm import (
    LLAMA_7B,
    MICRO,
    TINY,
    FinetuneConfig,
    WordTokenizer,
    build_model,
    generate,
    train_causal_lm,
)


class TestTokenizer:
    def test_specials_present(self):
        tok = WordTokenizer(words=["cat", "dog"])
        assert tok.vocab_size == 6  # 4 specials + 2 words
        assert tok.pad_id == 0

    def test_encode_decode_roundtrip(self):
        tok = WordTokenizer(words=["the", "cat", "sat"])
        ids = tok.encode("the cat sat")
        assert tok.decode(ids) == "the cat sat"

    def test_bos_eos_framing(self):
        tok = WordTokenizer(words=["hi"])
        ids = tok.encode("hi", bos=True, eos=True)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id
        assert tok.decode(ids) == "hi"
        assert tok.decode(ids, skip_special=False).startswith("<bos>")

    def test_unknown_word_maps_to_unk(self):
        tok = WordTokenizer(words=["hi"])
        assert tok.encode("zzz") == [tok.unk_id]

    def test_duplicate_words_deduped(self):
        tok = WordTokenizer(words=["a", "a", "b"])
        assert tok.vocab_size == 6

    def test_from_corpus(self):
        tok = WordTokenizer.from_corpus(["the cat", "the dog"])
        assert tok.vocab_size == 7
        assert tok.encode("cat dog") != [tok.unk_id, tok.unk_id]

    def test_out_of_range_decode(self):
        tok = WordTokenizer(words=["x"])
        assert tok.decode([9999]) == "<unk>"


class TestModelSpecs:
    def test_llama7b_parameter_count(self):
        """The spec arithmetic must land on the real LLaMA-7B count."""
        assert LLAMA_7B.total_params() == pytest.approx(6.74e9, rel=0.01)

    def test_body_plus_embed_plus_norm_is_total(self):
        for spec in (MICRO, TINY, LLAMA_7B):
            assert (
                spec.body_params() + spec.embedding_params() + spec.norm_params()
                == spec.total_params()
            )

    def test_build_model_matches_spec_params(self):
        model = build_model(MICRO, seed=0)
        assert model.num_parameters() == MICRO.total_params()

    def test_build_model_vocab_override(self):
        model = build_model(MICRO, vocab_size=99)
        assert model.embed.num_embeddings == 99
        assert model.lm_head.out_features == 99

    def test_head_dim(self):
        assert LLAMA_7B.head_dim == 128


class TestGeneration:
    def _setup(self):
        tok = WordTokenizer(words=["a", "b", "c"])
        model = build_model(MICRO, vocab_size=tok.vocab_size, seed=0)
        return model, tok

    def test_greedy_is_deterministic(self):
        model, tok = self._setup()
        out1 = generate(model, tok, "a b", max_new_tokens=4)
        out2 = generate(model, tok, "a b", max_new_tokens=4)
        assert out1 == out2

    def test_max_new_tokens_respected(self):
        model, tok = self._setup()
        out = generate(model, tok, "a", max_new_tokens=3)
        assert len(out.split()) <= 3

    def test_sampled_generation_runs(self):
        model, tok = self._setup()
        out = generate(
            model, tok, "a", max_new_tokens=3, temperature=1.0,
            rng=np.random.default_rng(0),
        )
        assert isinstance(out, str)

    def test_memorized_continuation(self, world, tokenizer, trained_model):
        """The trained model must reproduce a memorized fact verbatim."""
        fact = world.facts["colors"][0]
        prompt = f"the color of {fact.subject} is"
        out = generate(trained_model, tokenizer, prompt, max_new_tokens=1)
        assert out.strip() == fact.answer


class TestFinetune:
    def test_loss_decreases(self, world, tokenizer):
        from repro.data import generate_corpus

        corpus = generate_corpus(world, 200, seed=20)
        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=1)
        model.to("gpu")
        result = train_causal_lm(
            model,
            corpus_batches(corpus, tokenizer, 8, rt.GPU, epochs=2, seed=21),
            FinetuneConfig(lr=3e-3),
        )
        assert result.steps > 0
        assert result.final_loss < result.losses[0] * 0.7

    def test_max_steps_respected(self, world, tokenizer):
        from repro.data import generate_corpus

        corpus = generate_corpus(world, 200, seed=22)
        model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=1)
        model.to("gpu")
        result = train_causal_lm(
            model,
            corpus_batches(corpus, tokenizer, 8, rt.GPU, seed=23),
            FinetuneConfig(lr=1e-3),
            max_steps=3,
        )
        assert result.steps == 3

    def test_training_under_edkm_pipeline_matches_plain(self, world, tokenizer):
        """The offload pipeline must not change training trajectories."""
        from repro.data import generate_corpus
        from repro.distributed import LearnerGroup

        corpus = generate_corpus(world, 64, seed=24)

        def run(pipeline):
            model = build_model(MICRO, vocab_size=tokenizer.vocab_size, seed=2)
            model.to("gpu")
            result = train_causal_lm(
                model,
                corpus_batches(corpus, tokenizer, 8, rt.GPU, seed=25),
                FinetuneConfig(lr=1e-3),
                pipeline=pipeline,
                max_steps=4,
            )
            return result.losses

        plain = run(None)
        piped = run(
            SavedTensorPipeline(EDKMConfig(group=LearnerGroup(4), shard_min_bytes=256))
        )
        assert np.allclose(plain, piped, rtol=1e-4)

    def test_paper_config(self):
        cfg = FinetuneConfig.paper()
        assert cfg.lr == 5e-5
        assert cfg.betas == (0.9, 0.95)
        assert cfg.weight_decay == 0.0
        assert cfg.grad_clip == 1.0
